// Package plp holds the partition map behind physiological partitioning
// (PLP): the assignment of routing keys to DORA partitions, and the
// per-routing-key B-tree segment roots of every partitioned index.
//
// The design keeps segment identity immutable and makes only *ownership*
// mobile. Each routing key (a TPC-C warehouse) gets its own segment tree
// per partitioned index, fixed at index creation; the map assigns
// contiguous routing-key ranges to partitions through a bounds array.
// Re-balancing moves a boundary key between adjacent partitions by
// rewriting the bounds — pure metadata, no key ever changes trees — so a
// migration is crash-atomic as a single catalog-record update, and
// routing a key to its segment never needs the (mutable) ownership
// assignment at all.
//
// A Map value is immutable after construction; mutations return a new
// Map (WithBounds, WithTable), so the engine publishes it through an
// atomic pointer and readers need no lock.
package plp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// ErrCorrupt reports an undecodable serialized map.
var ErrCorrupt = errors.New("plp: corrupt partition map")

// magic versions the serialized form.
const magic = "PLP1"

// Map is one immutable version of the partition map.
type Map struct {
	keys    int                 // routing keyspace size; routing keys are 1..keys
	bounds  []uint32            // len parts+1; partition p owns keys [bounds[p], bounds[p+1])
	version uint64              // bumped by every ownership change
	tables  map[uint32][]uint64 // store → segment root pages, indexed by routing key - 1
}

// New builds the initial map: keys routing keys split evenly (contiguous
// ranges) across parts partitions, version 1, no tables registered.
func New(keys, parts int) *Map {
	if parts > keys {
		parts = keys
	}
	if parts < 1 {
		parts = 1
	}
	bounds := evenBounds(keys, parts)
	return &Map{keys: keys, bounds: bounds, version: 1, tables: map[uint32][]uint64{}}
}

// evenBounds splits [1, keys+1) into parts contiguous ranges.
func evenBounds(keys, parts int) []uint32 {
	bounds := make([]uint32, parts+1)
	for p := 0; p <= parts; p++ {
		bounds[p] = uint32(1 + p*keys/parts)
	}
	return bounds
}

// Keys returns the routing keyspace size.
func (m *Map) Keys() int { return m.keys }

// Parts returns the partition count.
func (m *Map) Parts() int { return len(m.bounds) - 1 }

// Version returns the map version (bumped by every ownership change).
func (m *Map) Version() uint64 { return m.version }

// Bounds returns a copy of the ownership bounds array.
func (m *Map) Bounds() []uint32 { return append([]uint32(nil), m.bounds...) }

// Owner returns the partition owning routing key rk. Out-of-range keys
// clamp to the nearest partition, so a router built on Owner is total.
func (m *Map) Owner(rk uint32) int {
	if rk < m.bounds[0] {
		return 0
	}
	// First partition whose range starts above rk, minus one.
	p := sort.Search(m.Parts(), func(i int) bool { return m.bounds[i+1] > rk })
	if p >= m.Parts() {
		return m.Parts() - 1
	}
	return p
}

// Span returns the routing-key range [lo, hi) partition p owns.
func (m *Map) Span(p int) (lo, hi uint32) { return m.bounds[p], m.bounds[p+1] }

// Tables returns the registered partitioned stores, sorted.
func (m *Map) Tables() []uint32 {
	out := make([]uint32, 0, len(m.tables))
	for s := range m.tables {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Roots returns store's segment roots (indexed by routing key - 1), or
// nil when store is not a partitioned index.
func (m *Map) Roots(store uint32) []uint64 { return m.tables[store] }

// WithTable returns a copy of m with store registered to roots (one
// segment root per routing key). Registration does not bump the version:
// it changes the catalog, not ownership.
func (m *Map) WithTable(store uint32, roots []uint64) (*Map, error) {
	if len(roots) != m.keys {
		return nil, fmt.Errorf("plp: store %d registered %d segment roots, keyspace is %d", store, len(roots), m.keys)
	}
	n := m.clone()
	n.tables[store] = append([]uint64(nil), roots...)
	return n, nil
}

// WithBounds returns a copy of m with new ownership bounds and a bumped
// version. The bounds must cover the same keyspace with the same
// partition count, monotonically.
func (m *Map) WithBounds(bounds []uint32) (*Map, error) {
	if len(bounds) != len(m.bounds) {
		return nil, fmt.Errorf("plp: bounds length %d, want %d", len(bounds), len(m.bounds))
	}
	if bounds[0] != 1 || bounds[len(bounds)-1] != uint32(m.keys+1) {
		return nil, fmt.Errorf("plp: bounds %v do not cover keyspace 1..%d", bounds, m.keys)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			return nil, fmt.Errorf("plp: bounds %v not monotonic", bounds)
		}
	}
	n := m.clone()
	n.bounds = append([]uint32(nil), bounds...)
	n.version++
	return n, nil
}

// Repartition returns a copy of m redistributed evenly over parts
// partitions (used when an engine reopens with a different partition
// count than the persisted map), with a bumped version.
func (m *Map) Repartition(parts int) *Map {
	if parts > m.keys {
		parts = m.keys
	}
	if parts < 1 {
		parts = 1
	}
	n := m.clone()
	n.bounds = evenBounds(m.keys, parts)
	n.version++
	return n
}

// clone copies m (deep enough that the copy's maps/slices are private).
func (m *Map) clone() *Map {
	n := &Map{
		keys:    m.keys,
		bounds:  append([]uint32(nil), m.bounds...),
		version: m.version,
		tables:  make(map[uint32][]uint64, len(m.tables)),
	}
	for s, roots := range m.tables {
		n.tables[s] = append([]uint64(nil), roots...)
	}
	return n
}

// Encode serializes the map deterministically (tables sorted by store),
// so byte-identical recovery is testable by comparison.
func (m *Map) Encode() []byte {
	size := 4 + 8 + 4 + 4 + 4*len(m.bounds) + 4
	for range m.tables {
		size += 4 + 8*m.keys
	}
	out := make([]byte, 0, size)
	out = append(out, magic...)
	out = binary.BigEndian.AppendUint64(out, m.version)
	out = binary.BigEndian.AppendUint32(out, uint32(m.keys))
	out = binary.BigEndian.AppendUint32(out, uint32(m.Parts()))
	for _, b := range m.bounds {
		out = binary.BigEndian.AppendUint32(out, b)
	}
	stores := m.Tables()
	out = binary.BigEndian.AppendUint32(out, uint32(len(stores)))
	for _, s := range stores {
		out = binary.BigEndian.AppendUint32(out, s)
		for _, r := range m.tables[s] {
			out = binary.BigEndian.AppendUint64(out, r)
		}
	}
	return out
}

// Decode parses a serialized map.
func Decode(data []byte) (*Map, error) {
	r := reader{data: data}
	if string(r.bytes(4)) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	version := r.u64()
	keys := int(r.u32())
	parts := int(r.u32())
	if r.err || keys <= 0 || parts <= 0 || parts > keys {
		return nil, fmt.Errorf("%w: keys=%d parts=%d", ErrCorrupt, keys, parts)
	}
	bounds := make([]uint32, parts+1)
	for i := range bounds {
		bounds[i] = r.u32()
	}
	ntables := int(r.u32())
	if r.err || ntables < 0 {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	tables := make(map[uint32][]uint64, ntables)
	for i := 0; i < ntables; i++ {
		store := r.u32()
		roots := make([]uint64, keys)
		for j := range roots {
			roots[j] = r.u64()
		}
		if r.err {
			return nil, fmt.Errorf("%w: truncated table", ErrCorrupt)
		}
		tables[store] = roots
	}
	if r.err || len(r.data) != r.off {
		return nil, fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	m := &Map{keys: keys, bounds: bounds, version: version, tables: tables}
	if _, err := m.WithBounds(bounds); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return m, nil
}

// reader is a bounds-checked big-endian cursor.
type reader struct {
	data []byte
	off  int
	err  bool
}

func (r *reader) bytes(n int) []byte {
	if r.off+n > len(r.data) {
		r.err = true
		return make([]byte, n)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u32() uint32 { return binary.BigEndian.Uint32(r.bytes(4)) }
func (r *reader) u64() uint64 { return binary.BigEndian.Uint64(r.bytes(8)) }
