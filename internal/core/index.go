package core

import (
	"context"

	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/pageop"
	"repro/internal/space"
	"repro/internal/sync2"
	"repro/internal/tx"
)

// B-tree index operations. Key-level locking follows ARIES/KVL in spirit:
// each key value maps to a lock name (via a 40-bit key hash in the row
// name's page field), locked S for probes and X for mutations.

// btreeEnv adapts the engine to btree.Env.
type btreeEnv struct{ e *Engine }

func (v btreeEnv) Fix(pid page.ID, mode sync2.LatchMode) (*buffer.Frame, error) {
	return v.e.pool.Fix(pid, mode)
}

func (v btreeEnv) FixNew(pid page.ID) (*buffer.Frame, error) { return v.e.pool.FixNew(pid) }

func (v btreeEnv) Unfix(f *buffer.Frame, mode sync2.LatchMode) { v.e.pool.Unfix(f, mode) }

func (v btreeEnv) AllocPage(store uint32) (page.ID, error) {
	return v.e.sm.AllocPage(store, nil)
}

func (v btreeEnv) Log(txID uint64, f *buffer.Frame, op pageop.Op, undo []byte) error {
	t := v.e.txns.Lookup(txID)
	return v.e.logPhysical(txID, t, f, op, undo, undo == nil)
}

// newTree wraps btree.Open, enabling optimistic descents per Config.OLC.
// The buffer pool itself is the OptEnv; stats aggregate engine-wide.
func (e *Engine) newTree(store uint32, root page.ID) *btree.Tree {
	tr := btree.Open(btreeEnv{e}, store, root)
	if e.cfg.OLC {
		tr.EnableOLC(e.pool, &e.olc)
	}
	return tr
}

// Index is a B-tree index handle.
type Index struct {
	tree  *btree.Tree
	store uint32
}

// Store returns the index's store id.
func (ix *Index) Store() uint32 { return ix.store }

// Verify checks the index's structural invariants (entry ordering, high
// keys, level consistency, leaf chains) and returns its key count. Meant
// for tests and offline integrity checks; it latches node by node.
func (ix *Index) Verify() (int, error) { return ix.tree.Verify() }

// Root returns the index's root page.
func (ix *Index) Root() page.ID { return ix.tree.Root() }

// CreateIndex allocates a new B-tree index inside transaction t.
func (e *Engine) CreateIndex(t *tx.Tx) (*Index, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if err := snapshotGuard(t); err != nil {
		return nil, err
	}
	store := e.sm.CreateStore(space.KindBTree)
	tr, err := btree.Create(btreeEnv{e}, t.ID(), store)
	if err != nil {
		return nil, err
	}
	if err := e.sm.SetRoot(store, tr.Root()); err != nil {
		return nil, err
	}
	if e.cfg.OLC {
		tr.EnableOLC(e.pool, &e.olc)
	}
	return &Index{tree: tr, store: store}, nil
}

// OpenIndex attaches to an existing index by store id.
func (e *Engine) OpenIndex(store uint32) (*Index, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	root, err := e.sm.Root(store)
	if err != nil {
		return nil, err
	}
	return &Index{tree: e.newTree(store, root), store: store}, nil
}

// keyLockName maps an index key to its lock name (key-value locking).
func keyLockName(store uint32, key []byte) lock.Name {
	h := uint64(0xcbf29ce484222325)
	for _, b := range key {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	// Row names carry page+slot; fold the key hash into them.
	return lock.RowName(store, page.RID{Page: page.ID(h & 0xffffffffff), Slot: uint16(h >> 48)})
}

// lockKey performs hierarchical key locking with escalation. Like
// lockRow, a key lock the transaction already holds covers its whole
// ancestry, so a re-probe of the same key is a single private cache
// probe with no lock-table traffic.
func (e *Engine) lockKey(ctx context.Context, t *tx.Tx, store uint32, key []byte, m lock.Mode) error {
	if t.NoLock() {
		// DORA sub-transaction: conflicting key accesses were already
		// serialized by the owning partition's thread-local table.
		return nil
	}
	if held, ok := t.Escalated(store); ok && lock.StrongerOrEqual(held, m) {
		return nil
	}
	name := keyLockName(store, key)
	if held := t.HeldMode(name); held != lock.NL && lock.StrongerOrEqual(held, m) {
		t.HitLockCache()
		return nil
	}
	intent := lock.Intention(m)
	if err := e.acquire(ctx, t, lock.DatabaseName(), intent); err != nil {
		return err
	}
	if err := e.acquire(ctx, t, lock.StoreName(store), intent); err != nil {
		return err
	}
	if e.cfg.EscalateAfter > 0 && t.CountRowLock(store) > e.cfg.EscalateAfter {
		esc := lock.S
		if m == lock.X {
			esc = lock.X
		}
		if err := e.acquire(ctx, t, lock.StoreName(store), esc); err == nil {
			t.MarkEscalated(store, esc)
			return nil
		}
	}
	return e.acquire(ctx, t, name, m)
}

// probeLockTable is the pre-§7.7 wasted work: every B-tree probe searched
// the lock table even when the answer was not needed.
func (e *Engine) probeLockTable(t *tx.Tx, store uint32, key []byte) {
	if e.cfg.ProbeLockTable {
		_ = e.locks.Holds(t.ID(), keyLockName(store, key))
	}
}

// IndexInsert adds key→value to the index under an X key lock.
func (e *Engine) IndexInsert(t *tx.Tx, ix *Index, key, value []byte) error {
	return e.IndexInsertCtx(context.Background(), t, ix, key, value)
}

// IndexInsertCtx is IndexInsert whose lock waits observe ctx.
func (e *Engine) IndexInsertCtx(ctx context.Context, t *tx.Tx, ix *Index, key, value []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if err := snapshotGuard(t); err != nil {
		return err
	}
	if err := e.lockKey(ctx, t, ix.store, key, lock.X); err != nil {
		return err
	}
	e.probeLockTable(t, ix.store, key)
	return ix.tree.Insert(t.ID(), key, value)
}

// IndexLookup probes the index under an S key lock.
func (e *Engine) IndexLookup(t *tx.Tx, ix *Index, key []byte) ([]byte, bool, error) {
	return e.IndexLookupCtx(context.Background(), t, ix, key)
}

// IndexLookupCtx is IndexLookup whose lock waits observe ctx.
func (e *Engine) IndexLookupCtx(ctx context.Context, t *tx.Tx, ix *Index, key []byte) ([]byte, bool, error) {
	if e.closed.Load() {
		return nil, false, ErrClosed
	}
	if t != nil && t.IsSnapshot() {
		return e.indexLookupSnapshot(t, ix, key)
	}
	if err := e.lockKey(ctx, t, ix.store, key, lock.S); err != nil {
		return nil, false, err
	}
	e.probeLockTable(t, ix.store, key)
	return ix.tree.Search(key)
}

// IndexLookupForUpdateCtx probes the index under an X key lock — SELECT
// FOR UPDATE. Transactions that read a key intending to write it back
// later must use this instead of IndexLookupCtx: two transactions that
// both S-lock a key and then upgrade to X deadlock on each other, and
// the wider the read-to-write window (a served client's round trip, a
// user think time) the more certain the collision. Taking X up front
// serializes read-modify-write cycles on the key instead.
func (e *Engine) IndexLookupForUpdateCtx(ctx context.Context, t *tx.Tx, ix *Index, key []byte) ([]byte, bool, error) {
	if e.closed.Load() {
		return nil, false, ErrClosed
	}
	if err := snapshotGuard(t); err != nil {
		return nil, false, err
	}
	if err := e.lockKey(ctx, t, ix.store, key, lock.X); err != nil {
		return nil, false, err
	}
	e.probeLockTable(t, ix.store, key)
	return ix.tree.Search(key)
}

// IndexUpdate replaces the value for key under an X key lock.
func (e *Engine) IndexUpdate(t *tx.Tx, ix *Index, key, value []byte) error {
	return e.IndexUpdateCtx(context.Background(), t, ix, key, value)
}

// IndexUpdateCtx is IndexUpdate whose lock waits observe ctx.
func (e *Engine) IndexUpdateCtx(ctx context.Context, t *tx.Tx, ix *Index, key, value []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if err := snapshotGuard(t); err != nil {
		return err
	}
	if err := e.lockKey(ctx, t, ix.store, key, lock.X); err != nil {
		return err
	}
	e.probeLockTable(t, ix.store, key)
	return ix.tree.Update(t.ID(), key, value)
}

// IndexDelete removes key under an X key lock, returning the old value.
func (e *Engine) IndexDelete(t *tx.Tx, ix *Index, key []byte) ([]byte, error) {
	return e.IndexDeleteCtx(context.Background(), t, ix, key)
}

// IndexDeleteCtx is IndexDelete whose lock waits observe ctx.
func (e *Engine) IndexDeleteCtx(ctx context.Context, t *tx.Tx, ix *Index, key []byte) ([]byte, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if err := snapshotGuard(t); err != nil {
		return nil, err
	}
	if err := e.lockKey(ctx, t, ix.store, key, lock.X); err != nil {
		return nil, err
	}
	e.probeLockTable(t, ix.store, key)
	return ix.tree.Delete(t.ID(), key)
}

// IndexScan iterates keys in [from, to) under a store-level S lock,
// calling fn with copies of each pair. fn must not re-enter the engine on
// the same index's pages with EX intent.
func (e *Engine) IndexScan(t *tx.Tx, ix *Index, from, to []byte, fn func(key, value []byte) bool) error {
	return e.IndexScanCtx(context.Background(), t, ix, from, to, fn)
}

// IndexScanCtx is IndexScan whose lock waits observe ctx.
func (e *Engine) IndexScanCtx(ctx context.Context, t *tx.Tx, ix *Index, from, to []byte, fn func(key, value []byte) bool) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if t != nil && t.IsSnapshot() {
		return e.indexScanSnapshot(t, ix, from, to, fn)
	}
	if err := e.acquire(ctx, t, lock.DatabaseName(), lock.IS); err != nil {
		return err
	}
	if err := e.acquire(ctx, t, lock.StoreName(ix.store), lock.S); err != nil {
		return err
	}
	return ix.tree.Scan(from, to, func(k, v []byte) bool {
		return fn(append([]byte(nil), k...), append([]byte(nil), v...))
	})
}

// openTreeByStore returns a tree handle for a store during rollback.
func (e *Engine) openTreeByStore(store uint32) (*btree.Tree, error) {
	root, err := e.sm.Root(store)
	if err != nil {
		return nil, err
	}
	return e.newTree(store, root), nil
}
