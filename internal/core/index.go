package core

import (
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/pageop"
	"repro/internal/space"
	"repro/internal/sync2"
	"repro/internal/tx"
)

// B-tree index operations. Key-level locking follows ARIES/KVL in spirit:
// each key value maps to a lock name (via a 40-bit key hash in the row
// name's page field), locked S for probes and X for mutations.

// btreeEnv adapts the engine to btree.Env.
type btreeEnv struct{ e *Engine }

func (v btreeEnv) Fix(pid page.ID, mode sync2.LatchMode) (*buffer.Frame, error) {
	return v.e.pool.Fix(pid, mode)
}

func (v btreeEnv) FixNew(pid page.ID) (*buffer.Frame, error) { return v.e.pool.FixNew(pid) }

func (v btreeEnv) Unfix(f *buffer.Frame, mode sync2.LatchMode) { v.e.pool.Unfix(f, mode) }

func (v btreeEnv) AllocPage(store uint32) (page.ID, error) {
	return v.e.sm.AllocPage(store, nil)
}

func (v btreeEnv) Log(txID uint64, f *buffer.Frame, op pageop.Op, undo []byte) error {
	t := v.e.txns.Lookup(txID)
	return v.e.logPhysical(txID, t, f, op, undo, undo == nil)
}

// newTree wraps btree.Open, enabling optimistic descents per Config.OLC.
// The buffer pool itself is the OptEnv; stats aggregate engine-wide.
func (e *Engine) newTree(store uint32, root page.ID) *btree.Tree {
	tr := btree.Open(btreeEnv{e}, store, root)
	if e.cfg.OLC {
		tr.EnableOLC(e.pool, &e.olc)
	}
	return tr
}

// Index is a B-tree index handle: a single tree, or — under PLP — a
// forest of per-routing-key segment trees in one store.
type Index struct {
	tree  *btree.Tree
	store uint32
	// segs holds a PLP forest's segment trees indexed by routing key - 1
	// (nil for an unpartitioned index). Segment identity is fixed at
	// creation; only partition ownership of routing keys moves.
	segs []*btree.Tree
}

// Store returns the index's store id.
func (ix *Index) Store() uint32 { return ix.store }

// Partitioned reports whether the index is a PLP forest.
func (ix *Index) Partitioned() bool { return ix.segs != nil }

// plpRouteKey extracts a key's 1-based routing key: its first four bytes
// big-endian (TPC-C keys lead with the warehouse id). Short keys route
// to the first segment.
func plpRouteKey(key []byte) uint32 {
	if len(key) < 4 {
		return 1
	}
	return binary.BigEndian.Uint32(key[:4])
}

// segFor returns the tree responsible for key: the routing-key segment
// of a forest (out-of-range keys clamp), the single tree otherwise.
func (ix *Index) segFor(key []byte) *btree.Tree {
	if ix.segs == nil {
		return ix.tree
	}
	rk := plpRouteKey(key)
	if rk < 1 {
		rk = 1
	}
	if int(rk) > len(ix.segs) {
		rk = uint32(len(ix.segs))
	}
	return ix.segs[rk-1]
}

// ownerPath reports whether t's index operations should use the
// latch-free owner entry points: PLP forest + DORA sub-transaction (the
// partition's thread-local lock table already serialized conflicting
// key accesses, and the owner goroutine is the segment's only writer).
func (ix *Index) ownerPath(t *tx.Tx) bool {
	return ix.segs != nil && t != nil && t.NoLock()
}

// Verify checks the index's structural invariants (entry ordering, high
// keys, level consistency, leaf chains) and returns its key count. For a
// forest it verifies every segment and additionally checks that each
// segment holds only keys carrying its routing prefix. Meant for tests
// and offline integrity checks; it latches node by node.
func (ix *Index) Verify() (int, error) {
	if ix.segs == nil {
		return ix.tree.Verify()
	}
	total := 0
	for i, tr := range ix.segs {
		n, err := tr.Verify()
		if err != nil {
			return total, fmt.Errorf("segment %d: %w", i+1, err)
		}
		want := uint32(i + 1)
		var perr error
		if err := tr.Scan(nil, nil, func(k, _ []byte) bool {
			if plpRouteKey(k) != want {
				perr = fmt.Errorf("segment %d holds foreign key % x (route key %d)", i+1, k, plpRouteKey(k))
				return false
			}
			return true
		}); err != nil {
			return total, err
		}
		if perr != nil {
			return total, perr
		}
		total += n
	}
	return total, nil
}

// Root returns the index's root page (the first segment's, for a forest).
func (ix *Index) Root() page.ID { return ix.tree.Root() }

// CreateIndex allocates a new B-tree index inside transaction t.
func (e *Engine) CreateIndex(t *tx.Tx) (*Index, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if err := snapshotGuard(t); err != nil {
		return nil, err
	}
	store := e.sm.CreateStore(space.KindBTree)
	tr, err := btree.Create(btreeEnv{e}, t.ID(), store)
	if err != nil {
		return nil, err
	}
	if err := e.sm.SetRoot(store, tr.Root()); err != nil {
		return nil, err
	}
	if e.cfg.OLC {
		tr.EnableOLC(e.pool, &e.olc)
	}
	return &Index{tree: tr, store: store}, nil
}

// OpenIndex attaches to an existing index by store id — as a forest
// when the PLP partition map has the store registered.
func (e *Engine) OpenIndex(store uint32) (*Index, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if m := e.plpMap.Load(); m != nil {
		if roots := m.Roots(store); roots != nil {
			return e.plpForest(store, roots), nil
		}
	}
	root, err := e.sm.Root(store)
	if err != nil {
		return nil, err
	}
	return &Index{tree: e.newTree(store, root), store: store}, nil
}

// keyLockName maps an index key to its lock name (key-value locking).
func keyLockName(store uint32, key []byte) lock.Name {
	h := uint64(0xcbf29ce484222325)
	for _, b := range key {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	// Row names carry page+slot; fold the key hash into them.
	return lock.RowName(store, page.RID{Page: page.ID(h & 0xffffffffff), Slot: uint16(h >> 48)})
}

// lockKey performs hierarchical key locking with escalation. Like
// lockRow, a key lock the transaction already holds covers its whole
// ancestry, so a re-probe of the same key is a single private cache
// probe with no lock-table traffic.
func (e *Engine) lockKey(ctx context.Context, t *tx.Tx, store uint32, key []byte, m lock.Mode) error {
	if t.NoLock() {
		// DORA sub-transaction: conflicting key accesses were already
		// serialized by the owning partition's thread-local table.
		return nil
	}
	if held, ok := t.Escalated(store); ok && lock.StrongerOrEqual(held, m) {
		return nil
	}
	name := keyLockName(store, key)
	if held := t.HeldMode(name); held != lock.NL && lock.StrongerOrEqual(held, m) {
		t.HitLockCache()
		return nil
	}
	intent := lock.Intention(m)
	if err := e.acquire(ctx, t, lock.DatabaseName(), intent); err != nil {
		return err
	}
	if err := e.acquire(ctx, t, lock.StoreName(store), intent); err != nil {
		return err
	}
	if e.cfg.EscalateAfter > 0 && t.CountRowLock(store) > e.cfg.EscalateAfter {
		esc := lock.S
		if m == lock.X {
			esc = lock.X
		}
		if err := e.acquire(ctx, t, lock.StoreName(store), esc); err == nil {
			t.MarkEscalated(store, esc)
			return nil
		}
	}
	return e.acquire(ctx, t, name, m)
}

// probeLockTable is the pre-§7.7 wasted work: every B-tree probe searched
// the lock table even when the answer was not needed.
func (e *Engine) probeLockTable(t *tx.Tx, store uint32, key []byte) {
	if e.cfg.ProbeLockTable {
		_ = e.locks.Holds(t.ID(), keyLockName(store, key))
	}
}

// IndexInsert adds key→value to the index under an X key lock.
func (e *Engine) IndexInsert(t *tx.Tx, ix *Index, key, value []byte) error {
	return e.IndexInsertCtx(context.Background(), t, ix, key, value)
}

// IndexInsertCtx is IndexInsert whose lock waits observe ctx.
func (e *Engine) IndexInsertCtx(ctx context.Context, t *tx.Tx, ix *Index, key, value []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if err := snapshotGuard(t); err != nil {
		return err
	}
	if err := e.lockKey(ctx, t, ix.store, key, lock.X); err != nil {
		return err
	}
	e.probeLockTable(t, ix.store, key)
	if ix.ownerPath(t) {
		return ix.segFor(key).InsertOwner(t.ID(), key, value)
	}
	return ix.segFor(key).Insert(t.ID(), key, value)
}

// IndexLookup probes the index under an S key lock.
func (e *Engine) IndexLookup(t *tx.Tx, ix *Index, key []byte) ([]byte, bool, error) {
	return e.IndexLookupCtx(context.Background(), t, ix, key)
}

// IndexLookupCtx is IndexLookup whose lock waits observe ctx.
func (e *Engine) IndexLookupCtx(ctx context.Context, t *tx.Tx, ix *Index, key []byte) ([]byte, bool, error) {
	if e.closed.Load() {
		return nil, false, ErrClosed
	}
	if t != nil && t.IsSnapshot() {
		return e.indexLookupSnapshot(t, ix, key)
	}
	if err := e.lockKey(ctx, t, ix.store, key, lock.S); err != nil {
		return nil, false, err
	}
	e.probeLockTable(t, ix.store, key)
	if ix.ownerPath(t) {
		return ix.segFor(key).SearchOwner(key)
	}
	return ix.segFor(key).Search(key)
}

// IndexLookupForUpdateCtx probes the index under an X key lock — SELECT
// FOR UPDATE. Transactions that read a key intending to write it back
// later must use this instead of IndexLookupCtx: two transactions that
// both S-lock a key and then upgrade to X deadlock on each other, and
// the wider the read-to-write window (a served client's round trip, a
// user think time) the more certain the collision. Taking X up front
// serializes read-modify-write cycles on the key instead.
func (e *Engine) IndexLookupForUpdateCtx(ctx context.Context, t *tx.Tx, ix *Index, key []byte) ([]byte, bool, error) {
	if e.closed.Load() {
		return nil, false, ErrClosed
	}
	if err := snapshotGuard(t); err != nil {
		return nil, false, err
	}
	if err := e.lockKey(ctx, t, ix.store, key, lock.X); err != nil {
		return nil, false, err
	}
	e.probeLockTable(t, ix.store, key)
	if ix.ownerPath(t) {
		return ix.segFor(key).SearchOwner(key)
	}
	return ix.segFor(key).Search(key)
}

// IndexUpdate replaces the value for key under an X key lock.
func (e *Engine) IndexUpdate(t *tx.Tx, ix *Index, key, value []byte) error {
	return e.IndexUpdateCtx(context.Background(), t, ix, key, value)
}

// IndexUpdateCtx is IndexUpdate whose lock waits observe ctx.
func (e *Engine) IndexUpdateCtx(ctx context.Context, t *tx.Tx, ix *Index, key, value []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if err := snapshotGuard(t); err != nil {
		return err
	}
	if err := e.lockKey(ctx, t, ix.store, key, lock.X); err != nil {
		return err
	}
	e.probeLockTable(t, ix.store, key)
	if ix.ownerPath(t) {
		return ix.segFor(key).UpdateOwner(t.ID(), key, value)
	}
	return ix.segFor(key).Update(t.ID(), key, value)
}

// IndexDelete removes key under an X key lock, returning the old value.
func (e *Engine) IndexDelete(t *tx.Tx, ix *Index, key []byte) ([]byte, error) {
	return e.IndexDeleteCtx(context.Background(), t, ix, key)
}

// IndexDeleteCtx is IndexDelete whose lock waits observe ctx.
func (e *Engine) IndexDeleteCtx(ctx context.Context, t *tx.Tx, ix *Index, key []byte) ([]byte, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if err := snapshotGuard(t); err != nil {
		return nil, err
	}
	if err := e.lockKey(ctx, t, ix.store, key, lock.X); err != nil {
		return nil, err
	}
	e.probeLockTable(t, ix.store, key)
	if ix.ownerPath(t) {
		return ix.segFor(key).DeleteOwner(t.ID(), key)
	}
	return ix.segFor(key).Delete(t.ID(), key)
}

// IndexScan iterates keys in [from, to) under a store-level S lock,
// calling fn with copies of each pair. fn must not re-enter the engine on
// the same index's pages with EX intent.
func (e *Engine) IndexScan(t *tx.Tx, ix *Index, from, to []byte, fn func(key, value []byte) bool) error {
	return e.IndexScanCtx(context.Background(), t, ix, from, to, fn)
}

// IndexScanCtx is IndexScan whose lock waits observe ctx.
func (e *Engine) IndexScanCtx(ctx context.Context, t *tx.Tx, ix *Index, from, to []byte, fn func(key, value []byte) bool) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if t != nil && t.IsSnapshot() {
		return e.indexScanSnapshot(t, ix, from, to, fn)
	}
	if err := e.acquire(ctx, t, lock.DatabaseName(), lock.IS); err != nil {
		return err
	}
	if err := e.acquire(ctx, t, lock.StoreName(ix.store), lock.S); err != nil {
		return err
	}
	if ix.segs != nil {
		return ix.scanForest(ix.ownerPath(t), from, to, fn)
	}
	return ix.tree.Scan(from, to, func(k, v []byte) bool {
		return fn(append([]byte(nil), k...), append([]byte(nil), v...))
	})
}

// scanForest stitches a cross-segment range scan in key order: routing
// keys are the keys' leading four bytes, so ascending segments yield
// globally ascending keys, and only the edge segments need the caller's
// bounds. With owner=true each segment is read through the latch-free
// ScanOwner path (which already emits private copies).
func (ix *Index) scanForest(owner bool, from, to []byte, fn func(key, value []byte) bool) error {
	loRK, hiRK := 1, len(ix.segs)
	if from != nil {
		if rk := int(plpRouteKey(from)); rk > loRK {
			loRK = rk
		}
	}
	if to != nil {
		if rk := int(plpRouteKey(to)); rk < hiRK {
			hiRK = rk
		}
	}
	if loRK > len(ix.segs) || hiRK < 1 {
		return nil
	}
	stopped := false
	for rk := loRK; rk <= hiRK && !stopped; rk++ {
		segFrom, segTo := from, to
		if rk > loRK {
			segFrom = nil
		}
		if rk < hiRK {
			segTo = nil
		}
		tr := ix.segs[rk-1]
		var err error
		if owner {
			err = tr.ScanOwner(segFrom, segTo, func(k, v []byte) bool {
				if !fn(k, v) {
					stopped = true
					return false
				}
				return true
			})
		} else {
			err = tr.Scan(segFrom, segTo, func(k, v []byte) bool {
				if !fn(append([]byte(nil), k...), append([]byte(nil), v...)) {
					stopped = true
					return false
				}
				return true
			})
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// openTreeByStore returns the tree holding key in store during
// rollback: the key's routing-key segment when the store is a
// registered PLP forest (segment roots come from the partition map —
// the directory's single root slot is meaningless for a forest),
// otherwise the store's tree.
func (e *Engine) openTreeByStore(store uint32, key []byte) (*btree.Tree, error) {
	if m := e.plpMap.Load(); m != nil {
		if roots := m.Roots(store); roots != nil {
			rk := plpRouteKey(key)
			if rk < 1 {
				rk = 1
			}
			if int(rk) > len(roots) {
				rk = uint32(len(roots))
			}
			return e.newTree(store, page.ID(roots[rk-1])), nil
		}
	}
	root, err := e.sm.Root(store)
	if err != nil {
		return nil, err
	}
	return e.newTree(store, root), nil
}
