package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/wal"
)

// olcEngine builds a StageFinal engine with optimistic B-tree descents on.
func olcEngine(tb testing.TB) *Engine {
	tb.Helper()
	cfg := StageConfig(StageFinal)
	cfg.Frames = 1024
	cfg.OLC = true
	e, err := Open(disk.NewMem(0), wal.NewMemStore(), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { e.Close() })
	return e
}

func olcKey(w, i int) []byte { return []byte(fmt.Sprintf("w%02d-key%08d", w, i)) }

// TestOLCConcurrentSplitsVsProbes is the engine-level split/probe stress:
// writers grow the index (splitting continuously, including root splits)
// while readers run optimistic lookups and scans. Afterwards every
// inserted key must be findable and Verify's structural invariants must
// hold. Run with -race this exercises the degraded synchronized FixOpt;
// without it, the true speculative path.
func TestOLCConcurrentSplitsVsProbes(t *testing.T) {
	e := olcEngine(t)
	setup, _ := e.Begin()
	ix, err := e.CreateIndex(setup)
	if err != nil {
		t.Fatal(err)
	}
	// Seed keys so readers always have something to hit.
	const seed = 200
	for i := 0; i < seed; i++ {
		if err := e.IndexInsert(setup, ix, olcKey(99, i), []byte("seed")); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Commit(setup); err != nil {
		t.Fatal(err)
	}

	const (
		writers = 4
		readers = 4
		perW    = 600
		batch   = 20
	)
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < perW; i += batch {
				tx, err := e.Begin()
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				for j := i; j < i+batch && j < perW; j++ {
					if err := e.IndexInsert(tx, ix, olcKey(w, j), []byte("v")); err != nil {
						t.Errorf("writer %d insert %d: %v", w, j, err)
						_ = e.Abort(tx)
						return
					}
				}
				if err := e.Commit(tx); err != nil {
					t.Errorf("writer %d commit: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := e.Begin()
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				for p := 0; p < 16; p++ {
					i := rng.Intn(seed)
					v, ok, err := e.IndexLookup(tx, ix, olcKey(99, i))
					if err != nil || !ok || string(v) != "seed" {
						t.Errorf("reader %d: lookup(%s) = %q, %v, %v", r, olcKey(99, i), v, ok, err)
						_ = e.Abort(tx)
						return
					}
				}
				if rng.Intn(32) == 0 {
					n := 0
					err := e.IndexScan(tx, ix, olcKey(99, 0), olcKey(99, seed), func(k, v []byte) bool {
						n++
						return true
					})
					if err != nil || n != seed {
						t.Errorf("reader %d: scan saw %d (err %v), want %d", r, n, err, seed)
						_ = e.Abort(tx)
						return
					}
				}
				if err := e.Commit(tx); err != nil {
					t.Errorf("reader %d commit: %v", r, err)
					return
				}
			}
		}(r)
	}
	writeWG.Wait()
	close(stop)
	readWG.Wait()
	if t.Failed() {
		return
	}

	// No lost keys across restarts/fallbacks.
	check, _ := e.Begin()
	for w := 0; w < writers; w++ {
		for i := 0; i < perW; i++ {
			if _, ok, err := e.IndexLookup(check, ix, olcKey(w, i)); err != nil || !ok {
				t.Fatalf("lost key %s: %v %v", olcKey(w, i), ok, err)
			}
		}
	}
	if err := e.Commit(check); err != nil {
		t.Fatal(err)
	}
	want := writers*perW + seed
	if count, err := ix.Verify(); err != nil || count != want {
		t.Fatalf("Verify = %d, %v; want %d", count, err, want)
	}
	s := e.Stats().Btree
	if s.OptDescents == 0 {
		t.Fatal("no optimistic descents recorded")
	}
	t.Logf("olc: %d optimistic, %d restarts, %d fallbacks", s.OptDescents, s.Restarts, s.Fallbacks)
}

// TestOLCRecoveryUnaffected crashes mid-stream with OLC on and verifies
// restart recovery (which opens trees through the same engine config)
// reproduces the committed state.
func TestOLCRecoveryUnaffected(t *testing.T) {
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()
	cfg := StageConfig(StageFinal)
	cfg.Frames = 256
	cfg.OLC = true
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tx1, _ := e.Begin()
	ix, err := e.CreateIndex(tx1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := e.IndexInsert(tx1, ix, olcKey(0, i), []byte("durable")); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Commit(tx1); err != nil {
		t.Fatal(err)
	}
	// A loser that must be rolled back by recovery.
	loser, _ := e.Begin()
	if err := e.IndexInsert(loser, ix, olcKey(1, 0), []byte("ghost")); err != nil {
		t.Fatal(err)
	}
	e.Crash()

	e2, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	ix2, err := e2.OpenIndex(ix.Store())
	if err != nil {
		t.Fatal(err)
	}
	tx2, _ := e2.Begin()
	for i := 0; i < 500; i++ {
		if v, ok, err := e2.IndexLookup(tx2, ix2, olcKey(0, i)); err != nil || !ok || string(v) != "durable" {
			t.Fatalf("committed key %s lost: %q, %v, %v", olcKey(0, i), v, ok, err)
		}
	}
	if _, ok, err := e2.IndexLookup(tx2, ix2, olcKey(1, 0)); err != nil || ok {
		t.Fatalf("loser key survived recovery: %v, %v", ok, err)
	}
	if err := e2.Commit(tx2); err != nil {
		t.Fatal(err)
	}
	if _, err := ix2.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestAutoCheckpoint verifies the CheckpointEvery daemon: with no manual
// Checkpoint call, the master record advances as the log grows, so
// recovery after a crash scans only the tail past the last automatic
// checkpoint.
func TestAutoCheckpoint(t *testing.T) {
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()
	cfg := StageConfig(StageFinal)
	cfg.Frames = 256
	cfg.CheckpointEvery = 16 << 10 // 16 KiB of log per checkpoint
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := createTable(t, e)

	// Generate well past CheckpointEvery bytes of log and wait for the
	// daemon to publish a master record — without ever calling Checkpoint.
	var lastRID page.RID
	deadline := time.Now().Add(5 * time.Second)
	for {
		tx, err := e.Begin()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 32; i++ {
			rid, err := e.HeapInsert(tx, store, make([]byte, 128))
			if err != nil {
				t.Fatal(err)
			}
			lastRID = rid
		}
		if err := e.Commit(tx); err != nil {
			t.Fatal(err)
		}
		master, err := logStore.Master()
		if err != nil {
			t.Fatal(err)
		}
		if master > 0 && uint64(e.log.CurLSN()) > 3*uint64(cfg.CheckpointEvery) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-checkpoint never advanced the master (cur %v, master %v)", e.log.CurLSN(), master)
		}
	}
	masterBefore, err := logStore.Master()
	if err != nil {
		t.Fatal(err)
	}
	if masterBefore == 0 {
		t.Fatal("no automatic checkpoint recorded")
	}
	e.CrashHard()

	// Recovery's analysis starts at the master record — the auto
	// checkpoint — not at the log's beginning.
	e2 := reopen(t, vol, logStore, StageFinal)
	tx2, _ := e2.Begin()
	if _, err := e2.HeapRead(tx2, store, lastRID); err != nil {
		t.Fatalf("last committed row lost after auto-checkpoint recovery: %v", err)
	}
	if err := e2.Commit(tx2); err != nil {
		t.Fatal(err)
	}
	// The reopened engine re-checkpoints at the end of restart; its master
	// must sit at or past the auto-checkpoint the daemon took.
	masterAfter, err := logStore.Master()
	if err != nil {
		t.Fatal(err)
	}
	if masterAfter < masterBefore {
		t.Fatalf("recovery regressed the master: %v < %v", masterAfter, masterBefore)
	}
}
