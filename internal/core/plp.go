package core

// Physiological partitioning (PLP): the DORA follow-up that partitions
// the physical B-trees themselves. Every partitioned index is a forest
// of per-routing-key segment trees (one per TPC-C warehouse), and the
// DORA partition owning a routing key is the only writer that mutates
// its segments — so owner-path index operations run on validated
// speculative page images with no latch acquisition (see btree/owner.go
// for the latch-freedom argument).
//
// The partition map (internal/plp.Map) is the single piece of shared
// metadata: segment roots per store, plus the ownership bounds that
// assign contiguous routing-key ranges to partitions. It is persisted
// as one record in a catalog heap store with the fixed id 1, created at
// the first PLP open — so crash recovery rebuilds the map byte-
// identically from ordinary heap redo/undo, and a re-balancing
// migration is crash-atomic as one record rewrite inside one committed
// transaction.
//
// The re-balancer watches per-partition routing deltas and, when skew
// exceeds plpSkewTrigger, moves one boundary routing key from the
// hottest multi-key partition to its lighter adjacent neighbor. The
// migration protocol: freeze routing (submitters block at the routing
// lock), post a barrier to the two affected partition owners, and only
// if both report idle — no queued work, no held locks, nothing parked —
// persist the new bounds and flip the in-memory map while both owners
// are stopped at the barrier. A busy partition releases the barrier
// immediately and the migration retries; segment identity never
// changes, so no key ever moves between trees.

import (
	"context"
	"fmt"
	"time"

	"repro/internal/btree"
	"repro/internal/page"
	"repro/internal/plp"
	"repro/internal/space"
	"repro/internal/sync2"
	"repro/internal/tx"
)

// plpCatalogStore is the fixed store id of the partition-map catalog.
// It must be 1: the catalog is the first store created on a fresh PLP
// volume, and a fixed id is what lets recovery find it before any other
// metadata exists.
const plpCatalogStore uint32 = 1

// Re-balancer tuning.
const (
	// plpSkewTrigger is the per-tick routing-delta skew (max/mean over
	// partitions) above which a boundary migration is attempted.
	plpSkewTrigger = 1.25
	// plpMinSample is the minimum routed-action delta per tick before
	// skew is evaluated (tiny samples are noise).
	plpMinSample = 64
	// plpQuiesceRetries bounds the barrier attempts of one migration;
	// routing stays frozen across retries, so in-flight work drains and
	// the partitions go idle unless the system is saturated with
	// cross-partition rendezvous (then the next tick retries).
	plpQuiesceRetries = 100
)

// PlpStats reports the partition map's state and re-balancer activity.
type PlpStats struct {
	Keys       int    // routing keyspace size (segments per partitioned index)
	Partitions int    // owners sharing the keyspace
	Tables     int    // partitioned indexes registered
	MapVersion uint64 // bumped by every ownership change
	Migrations uint64 // boundary migrations the re-balancer committed
}

// PlpMap returns the current partition map (nil unless Config.PLP).
func (e *Engine) PlpMap() *plp.Map { return e.plpMap.Load() }

// plpReadCatalog scans the catalog store for the persisted partition
// map, reading pages directly (no transaction, no locks — callers run
// single-threaded during Open or hold plpMu). Returns (nil, zero RID,
// nil) when the store exists but holds no record yet.
func (e *Engine) plpReadCatalog() (*plp.Map, page.RID, error) {
	pids, err := e.sm.Pages(plpCatalogStore)
	if err != nil {
		return nil, page.RID{}, err
	}
	for _, pid := range pids {
		f, err := e.fix(pid, sync2.LatchSH)
		if err != nil {
			return nil, page.RID{}, err
		}
		p := f.Page()
		if p.Type() != page.TypeHeap {
			e.pool.Unfix(f, sync2.LatchSH)
			continue
		}
		for i := 0; i < p.NumSlots(); i++ {
			rec, rerr := p.Record(i)
			if rerr != nil {
				continue // tombstone
			}
			m, derr := plp.Decode(append([]byte(nil), rec...))
			e.pool.Unfix(f, sync2.LatchSH)
			if derr != nil {
				return nil, page.RID{}, fmt.Errorf("core: plp catalog: %w", derr)
			}
			return m, page.RID{Page: pid, Slot: uint16(i)}, nil
		}
		e.pool.Unfix(f, sync2.LatchSH)
	}
	return nil, page.RID{}, nil
}

// plpPersist rewrites the catalog record to m inside t (delete the old
// record, insert the new one — a record's size grows when tables are
// registered, so in-place update is not an option). It returns the new
// record's RID without touching e.plpRID: the caller installs it only
// once t's fate is known, so an aborted migration keeps pointing at the
// (restored) old record. Caller holds plpMu.
func (e *Engine) plpPersist(ctx context.Context, t *tx.Tx, m *plp.Map) (page.RID, error) {
	if e.plpRID != (page.RID{}) {
		if err := e.HeapDeleteCtx(ctx, t, plpCatalogStore, e.plpRID); err != nil {
			return page.RID{}, err
		}
	}
	return e.HeapInsertCtx(ctx, t, plpCatalogStore, m.Encode())
}

// plpInit loads (or creates) the partition map, installs the executor's
// router, and starts the re-balancer. Called from Open after restart
// recovery and executor construction.
func (e *Engine) plpInit() error {
	parts := e.dora.Partitions()
	var m *plp.Map
	if kind, err := e.sm.StoreKindOf(plpCatalogStore); err == nil {
		if kind != space.KindHeap {
			return fmt.Errorf("core: store %d is not the PLP catalog — the volume predates PLP; recreate it with Config.PLP", plpCatalogStore)
		}
		var rid page.RID
		var rerr error
		m, rid, rerr = e.plpReadCatalog()
		if rerr != nil {
			return rerr
		}
		e.plpRID = rid
	}
	if m == nil {
		// Fresh volume (or a crashed pre-commit creation): the catalog
		// store must claim the fixed id before any user store exists.
		if _, err := e.sm.StoreKindOf(plpCatalogStore); err != nil {
			if id := e.sm.CreateStore(space.KindHeap); id != plpCatalogStore {
				return fmt.Errorf("core: PLP catalog got store id %d, want %d — enable PLP on a fresh volume", id, plpCatalogStore)
			}
		}
		m = plp.New(e.cfg.DoraKeys, parts)
		if err := e.plpPersistTx(m); err != nil {
			return err
		}
	} else if m.Parts() != parts {
		// Reopened with a different partition count: redistribute the
		// persisted keyspace evenly (segment roots are untouched).
		m = m.Repartition(parts)
		if err := e.plpPersistTx(m); err != nil {
			return err
		}
	}
	e.plpMap.Store(m)
	e.dora.SetRouter(func(rk uint32) int { return e.plpMap.Load().Owner(rk) })
	if e.cfg.PlpRebalanceEvery > 0 {
		e.plpStop = make(chan struct{})
		e.plpDone = make(chan struct{})
		go e.rebalanceLoop()
	}
	return nil
}

// plpPersistTx persists m in its own committed transaction and installs
// the new catalog RID. Open-time only (no plpMu needed: single-threaded).
func (e *Engine) plpPersistTx(m *plp.Map) error {
	t, err := e.Begin()
	if err != nil {
		return err
	}
	rid, err := e.plpPersist(context.Background(), t, m)
	if err != nil {
		_ = e.Abort(t)
		return err
	}
	if err := e.Commit(t); err != nil {
		return err
	}
	e.plpRID = rid
	return nil
}

// stopRebalancer stops the re-balancer daemon, waiting out an in-flight
// migration. Must run before dora.Close: a migration's barrier needs
// live partition owners to complete.
func (e *Engine) stopRebalancer() {
	if e.plpStop == nil {
		return
	}
	close(e.plpStop)
	<-e.plpDone
	e.plpStop = nil
}

// CreatePartitionedIndex allocates a PLP index inside transaction t: one
// B-tree segment per routing key, all in one store, registered in the
// partition map's catalog record. Like CreateIndex, the store id itself
// is not transactional; the catalog registration rides t, so the map is
// durable iff t commits.
func (e *Engine) CreatePartitionedIndex(t *tx.Tx) (*Index, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if err := snapshotGuard(t); err != nil {
		return nil, err
	}
	m := e.plpMap.Load()
	if m == nil {
		return nil, fmt.Errorf("core: CreatePartitionedIndex requires Config.PLP")
	}
	store := e.sm.CreateStore(space.KindBTree)
	keys := m.Keys()
	roots := make([]uint64, keys)
	segs := make([]*btree.Tree, keys)
	for i := 0; i < keys; i++ {
		tr, err := btree.Create(btreeEnv{e}, t.ID(), store)
		if err != nil {
			return nil, err
		}
		tr.EnableOLC(e.pool, &e.olc)
		roots[i] = uint64(tr.Root())
		segs[i] = tr
	}
	// The directory root slot gets the first segment (recovery's page
	// sweep overwrites it arbitrarily anyway); the map is authoritative.
	if err := e.sm.SetRoot(store, page.ID(roots[0])); err != nil {
		return nil, err
	}
	e.plpMu.Lock()
	defer e.plpMu.Unlock()
	next, err := e.plpMap.Load().WithTable(store, roots)
	if err != nil {
		return nil, err
	}
	rid, err := e.plpPersist(context.Background(), t, next)
	if err != nil {
		return nil, err
	}
	e.plpRID = rid
	e.plpMap.Store(next)
	return &Index{tree: segs[0], store: store, segs: segs}, nil
}

// plpForest builds an Index handle over store's registered segments.
func (e *Engine) plpForest(store uint32, roots []uint64) *Index {
	segs := make([]*btree.Tree, len(roots))
	for i, r := range roots {
		tr := btree.Open(btreeEnv{e}, store, page.ID(r))
		tr.EnableOLC(e.pool, &e.olc)
		segs[i] = tr
	}
	return &Index{tree: segs[0], store: store, segs: segs}
}

// rebalanceLoop is the skew re-balancer daemon: every tick it compares
// per-partition routing deltas and migrates one boundary routing key
// when the skew trigger fires.
func (e *Engine) rebalanceLoop() {
	defer close(e.plpDone)
	ticker := time.NewTicker(e.cfg.PlpRebalanceEvery)
	defer ticker.Stop()
	st := &rebalanceState{
		last: make([]uint64, e.dora.Partitions()),
		ema:  make([]float64, e.dora.Partitions()),
		from: -1,
		to:   -1,
	}
	for {
		select {
		case <-e.plpStop:
			return
		case <-ticker.C:
			e.rebalanceOnce(st)
		}
	}
}

// rebalanceState carries the re-balancer's inter-tick memory: previous
// cumulative Routed counters, the smoothed per-partition load, and the
// previous tick's migration proposal (for two-tick confirmation).
type rebalanceState struct {
	last     []uint64
	ema      []float64
	from, to int
}

// rebalanceOnce evaluates one tick. last holds the previous tick's
// per-partition Routed counters; deltas (not cumulative totals) drive
// the decision so the re-balancer reacts to the current load shape, not
// the history it has already corrected. The deltas feed an exponential
// moving average (ema, half-weight per tick): raw per-tick deltas are
// hostage to scheduler bursts — on few cores one worker can own a whole
// tick, making its partition look 100% hot for one sample and the next
// partition the tick after, thrashing boundary keys back and forth.
// Sustained skew dominates the average within a few ticks; bursts that
// alternate cancel out.
//
// A migration additionally needs two-tick confirmation: the same
// (from, to) proposal on consecutive ticks. One noisy sample crossing
// the trigger proposes but does not move; real skew proposes the same
// move every tick and pays one tick of extra latency.
func (e *Engine) rebalanceOnce(st *rebalanceState) {
	s := e.dora.Stats()
	ema := st.ema
	n := len(s.Parts)
	var total uint64
	for i, ps := range s.Parts {
		d := ps.Routed - st.last[i]
		st.last[i] = ps.Routed
		total += d
		ema[i] = (ema[i] + float64(d)) / 2
	}
	if total < plpMinSample {
		return
	}
	var emaTotal float64
	for _, v := range ema {
		emaTotal += v
	}
	mean := emaTotal / float64(n)
	if mean <= 0 {
		return
	}
	m := e.plpMap.Load()
	// Hottest partition that can shrink (owns more than one routing key)
	// and exceeds the trigger. The overall hottest may be a single-key
	// partition — nothing to migrate there, and that is the converged
	// state for a sufficiently hot key.
	from := -1
	for i := 0; i < n; i++ {
		lo, hi := m.Span(i)
		if hi-lo <= 1 {
			continue
		}
		if ema[i]/mean < plpSkewTrigger {
			continue
		}
		if from == -1 || ema[i] > ema[from] {
			from = i
		}
	}
	if from == -1 {
		st.from, st.to = -1, -1
		return
	}
	// Lighter adjacent neighbor takes the boundary key nearest to it.
	to := -1
	if from > 0 {
		to = from - 1
	}
	if from < n-1 && (to == -1 || ema[from+1] < ema[to]) {
		to = from + 1
	}
	if to == -1 || ema[to] >= ema[from] {
		st.from, st.to = -1, -1
		return
	}
	if from != st.from || to != st.to {
		st.from, st.to = from, to // first sighting: propose, confirm next tick
		return
	}
	st.from, st.to = -1, -1
	bounds := m.Bounds()
	if to < from {
		bounds[from]++ // left neighbor absorbs from's lowest key
	} else {
		bounds[from+1]-- // right neighbor absorbs from's highest key
	}
	next, err := m.WithBounds(bounds)
	if err != nil {
		return
	}
	e.migrate(from, to, next)
}

// migrate executes one boundary migration: freeze routing, rendezvous
// with both affected owners, and — only with both provably idle —
// persist and flip the map while they are stopped at the barrier.
func (e *Engine) migrate(from, to int, next *plp.Map) {
	e.plpMu.Lock()
	defer e.plpMu.Unlock()
	if e.plpMap.Load().Version() != next.Version()-1 {
		return // the map moved under us; re-evaluate next tick
	}
	e.dora.FreezeRouting()
	defer e.dora.UnfreezeRouting()
	for attempt := 0; attempt < plpQuiesceRetries; attempt++ {
		flipped := false
		e.dora.Quiesce([]int{from, to}, func() {
			t, err := e.Begin()
			if err != nil {
				return
			}
			rid, err := e.plpPersist(context.Background(), t, next)
			if err != nil {
				_ = e.Abort(t)
				return
			}
			if err := e.Commit(t); err != nil {
				return
			}
			e.plpRID = rid
			e.plpMap.Store(next)
			e.plpMigrations.Add(1)
			flipped = true
		})
		if flipped {
			return
		}
		// Busy: with routing frozen the partitions drain; yield briefly
		// and retry. Giving up after the retry budget just defers the
		// migration to the next tick.
		time.Sleep(100 * time.Microsecond)
	}
}
