package core

import (
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/wal"
)

// TestLoserSpanningCheckpoint exercises the analysis path that recovers a
// transaction from the checkpoint's transaction table: the loser began and
// logged work BEFORE the checkpoint, the crash comes after, and the master
// record points past the loser's begin record — so only the checkpoint's
// Txs list lets analysis find it.
func TestLoserSpanningCheckpoint(t *testing.T) {
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()
	cfg := StageConfig(StageFinal)
	cfg.Frames = 128
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := createTable(t, e)
	// Committed baseline.
	tx1, _ := e.Begin()
	rid, err := e.HeapInsert(tx1, store, []byte("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(tx1); err != nil {
		t.Fatal(err)
	}
	// The loser: modifies the row, then stays open across a checkpoint.
	loser, _ := e.Begin()
	if err := e.HeapUpdate(loser, store, rid, []byte("tampered")); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// More committed work after the checkpoint.
	tx2, _ := e.Begin()
	rid2, err := e.HeapInsert(tx2, store, []byte("after-ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(tx2); err != nil {
		t.Fatal(err)
	}
	e.CrashHard()

	e2 := reopen(t, vol, logStore, StageFinal)
	tx3, _ := e2.Begin()
	got, err := e2.HeapRead(tx3, store, rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "baseline" {
		t.Fatalf("loser update not undone: %q", got)
	}
	if got, err := e2.HeapRead(tx3, store, rid2); err != nil || string(got) != "after-ckpt" {
		t.Fatalf("post-checkpoint commit lost: %q, %v", got, err)
	}
	if err := e2.Commit(tx3); err != nil {
		t.Fatal(err)
	}
}

// TestDoubleCrashRecovery crashes, recovers, works, crashes again, and
// recovers again — the second recovery must replay over the first's
// checkpoint and CLRs without confusion.
func TestDoubleCrashRecovery(t *testing.T) {
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()
	cfg := StageConfig(StageFinal)
	cfg.Frames = 64
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := createTable(t, e)
	tx1, _ := e.Begin()
	var rids []page.RID
	for i := 0; i < 30; i++ {
		rid, err := e.HeapInsert(tx1, store, []byte(fmt.Sprintf("gen1-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := e.Commit(tx1); err != nil {
		t.Fatal(err)
	}
	// Loser 1.
	l1, _ := e.Begin()
	if err := e.HeapUpdate(l1, store, rids[0], []byte("tamper1")); err != nil {
		t.Fatal(err)
	}
	if err := e.Log().Flush(e.Log().CurLSN()); err != nil {
		t.Fatal(err)
	}
	e.CrashHard()

	e2 := reopen(t, vol, logStore, StageFinal)
	tx2, _ := e2.Begin()
	for i := 0; i < 30; i++ {
		if got, err := e2.HeapRead(tx2, store, rids[i]); err != nil || string(got) != fmt.Sprintf("gen1-%d", i) {
			t.Fatalf("after first crash, row %d = %q, %v", i, got, err)
		}
	}
	// Second generation of work, then a second loser + crash.
	rid2, err := e2.HeapInsert(tx2, store, []byte("gen2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Commit(tx2); err != nil {
		t.Fatal(err)
	}
	l2, _ := e2.Begin()
	if err := e2.HeapUpdate(l2, store, rid2, []byte("tamper2")); err != nil {
		t.Fatal(err)
	}
	if err := e2.Log().Flush(e2.Log().CurLSN()); err != nil {
		t.Fatal(err)
	}
	e2.CrashHard()

	e3 := reopen(t, vol, logStore, StageFinal)
	tx3, _ := e3.Begin()
	for i := 0; i < 30; i++ {
		if got, err := e3.HeapRead(tx3, store, rids[i]); err != nil || string(got) != fmt.Sprintf("gen1-%d", i) {
			t.Fatalf("after second crash, row %d = %q, %v", i, got, err)
		}
	}
	if got, err := e3.HeapRead(tx3, store, rid2); err != nil || string(got) != "gen2" {
		t.Fatalf("gen2 row = %q, %v", got, err)
	}
	if err := e3.Commit(tx3); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointWhileConcurrentLoad verifies fuzzy checkpoints do not
// corrupt anything while transactions run.
func TestCheckpointWhileConcurrentLoad(t *testing.T) {
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()
	cfg := StageConfig(StageFinal)
	cfg.Frames = 128
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := createTable(t, e)
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 20; i++ {
			txi, err := e.Begin()
			if err != nil {
				done <- err
				return
			}
			for j := 0; j < 20; j++ {
				if _, err := e.HeapInsert(txi, store, []byte("row")); err != nil {
					done <- err
					return
				}
			}
			if err := e.Commit(txi); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 10; i++ {
		if err := e.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	e.CrashHard()
	e2 := reopen(t, vol, logStore, StageFinal)
	tx1, _ := e2.Begin()
	count := 0
	if err := e2.HeapScan(tx1, store, func(page.RID, []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	// All insert transactions committed and were flushed by group commit
	// at their commit points (400 total); recovery must restore exactly
	// those.
	if count != 400 {
		t.Fatalf("recovered %d rows, want 400", count)
	}
	if err := e2.Commit(tx1); err != nil {
		t.Fatal(err)
	}
}
