package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/disk"
	"repro/internal/wal"
)

// TestConcurrentCommitAbortMix runs concurrent workers against ONE shared
// index, each randomly committing or aborting, and verifies that exactly
// the committed keys remain — exercising logical undo (with B-tree splits)
// interleaved with concurrent inserts from other transactions, which is
// the scenario physical undo would corrupt and ARIES/IM-style logical undo
// exists for.
func TestConcurrentCommitAbortMix(t *testing.T) {
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()
	cfg := StageConfig(StageFinal)
	cfg.Frames = 512
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tx0, _ := e.Begin()
	ix, err := e.CreateIndex(tx0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(tx0); err != nil {
		t.Fatal(err)
	}

	const workers = 4
	const txPerWorker = 25
	const keysPerTx = 20
	var mu sync.Mutex
	committed := map[string]bool{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txPerWorker; i++ {
				txi, err := e.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				keys := make([]string, 0, keysPerTx)
				ok := true
				for j := 0; j < keysPerTx; j++ {
					k := fmt.Sprintf("w%d-t%02d-k%02d", w, i, j)
					if err := e.IndexInsert(txi, ix, []byte(k), []byte("v")); err != nil {
						t.Error(err)
						ok = false
						break
					}
					keys = append(keys, k)
				}
				if !ok {
					_ = e.Abort(txi)
					return
				}
				// Workers alternate commit/abort deterministically.
				if (w+i)%2 == 0 {
					if err := e.Commit(txi); err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					for _, k := range keys {
						committed[k] = true
					}
					mu.Unlock()
				} else {
					if err := e.Abort(txi); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Exactly the committed keys remain, tree structurally sound.
	txv, _ := e.Begin()
	count := 0
	if err := e.IndexScan(txv, ix, nil, nil, func(k, v []byte) bool {
		if !committed[string(k)] {
			t.Errorf("aborted key %q survived", k)
			return false
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != len(committed) {
		t.Fatalf("index has %d keys, want %d", count, len(committed))
	}
	if err := e.Commit(txv); err != nil {
		t.Fatal(err)
	}
	vcount, err := ix.Verify()
	if err != nil {
		t.Fatalf("tree corrupt after mixed workload: %v", err)
	}
	if vcount != len(committed) {
		t.Fatalf("Verify counted %d, want %d", vcount, len(committed))
	}
}
