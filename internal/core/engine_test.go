package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/wal"
)

// newEngine builds an engine at the given stage over fresh stores.
func newEngine(t *testing.T, stage Stage) (*Engine, *disk.MemVolume, *wal.MemStore) {
	t.Helper()
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()
	cfg := StageConfig(stage)
	cfg.Frames = 256
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, vol, logStore
}

// createTable registers a heap store inside a short committed setup
// transaction (CreateTable requires an active transaction).
func createTable(tb testing.TB, e *Engine) uint32 {
	tb.Helper()
	ct, err := e.Begin()
	if err != nil {
		tb.Fatal(err)
	}
	store, err := e.CreateTable(ct)
	if err != nil {
		tb.Fatal(err)
	}
	if err := e.Commit(ct); err != nil {
		tb.Fatal(err)
	}
	return store
}

// reopen closes nothing and opens a new engine over the same stores
// (post-crash).
func reopen(t *testing.T, vol *disk.MemVolume, logStore *wal.MemStore, stage Stage) *Engine {
	t.Helper()
	cfg := StageConfig(stage)
	cfg.Frames = 256
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func allStages(t *testing.T, fn func(t *testing.T, stage Stage)) {
	for _, s := range Stages() {
		s := s
		t.Run(s.String(), func(t *testing.T) { fn(t, s) })
	}
}

func TestHeapCRUDCommit(t *testing.T) {
	allStages(t, func(t *testing.T, stage Stage) {
		e, _, _ := newEngine(t, stage)
		store := createTable(t, e)
		tx1, err := e.Begin()
		if err != nil {
			t.Fatal(err)
		}
		rid, err := e.HeapInsert(tx1, store, []byte("hello"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.HeapRead(tx1, store, rid)
		if err != nil || string(got) != "hello" {
			t.Fatalf("read own write: %q, %v", got, err)
		}
		if err := e.HeapUpdate(tx1, store, rid, []byte("world")); err != nil {
			t.Fatal(err)
		}
		if err := e.Commit(tx1); err != nil {
			t.Fatal(err)
		}
		// New transaction sees committed state.
		tx2, _ := e.Begin()
		got, err = e.HeapRead(tx2, store, rid)
		if err != nil || string(got) != "world" {
			t.Fatalf("after commit: %q, %v", got, err)
		}
		if err := e.HeapDelete(tx2, store, rid); err != nil {
			t.Fatal(err)
		}
		if _, err := e.HeapRead(tx2, store, rid); !errors.Is(err, ErrNoRecord) {
			t.Fatalf("read after delete = %v", err)
		}
		if err := e.Commit(tx2); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAbortUndoesHeapChanges(t *testing.T) {
	allStages(t, func(t *testing.T, stage Stage) {
		e, _, _ := newEngine(t, stage)
		store := createTable(t, e)
		// Committed baseline row.
		tx1, _ := e.Begin()
		rid, err := e.HeapInsert(tx1, store, []byte("stable"))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Commit(tx1); err != nil {
			t.Fatal(err)
		}
		// Aborted transaction: insert + update + delete.
		tx2, _ := e.Begin()
		rid2, err := e.HeapInsert(tx2, store, []byte("doomed"))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.HeapUpdate(tx2, store, rid, []byte("mutated")); err != nil {
			t.Fatal(err)
		}
		if err := e.Abort(tx2); err != nil {
			t.Fatal(err)
		}
		// Stable row restored; doomed row gone.
		tx3, _ := e.Begin()
		got, err := e.HeapRead(tx3, store, rid)
		if err != nil || string(got) != "stable" {
			t.Fatalf("after abort: %q, %v", got, err)
		}
		if _, err := e.HeapRead(tx3, store, rid2); !errors.Is(err, ErrNoRecord) {
			t.Fatalf("aborted insert still visible: %v", err)
		}
		if err := e.Commit(tx3); err != nil {
			t.Fatal(err)
		}
	})
}

func TestHeapScanMany(t *testing.T) {
	e, _, _ := newEngine(t, StageFinal)
	store := createTable(t, e)
	tx1, _ := e.Begin()
	const n = 3000 // spans many pages and extents
	want := map[string]bool{}
	for i := 0; i < n; i++ {
		data := []byte(fmt.Sprintf("row-%05d", i))
		if _, err := e.HeapInsert(tx1, store, data); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		want[string(data)] = true
	}
	if err := e.Commit(tx1); err != nil {
		t.Fatal(err)
	}
	tx2, _ := e.Begin()
	seen := 0
	err := e.HeapScan(tx2, store, func(rid page.RID, rec []byte) bool {
		if !want[string(rec)] {
			t.Errorf("unexpected record %q", rec)
			return false
		}
		seen++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Fatalf("scan saw %d records, want %d", seen, n)
	}
	if err := e.Commit(tx2); err != nil {
		t.Fatal(err)
	}
}

func TestIndexCRUDAndAbort(t *testing.T) {
	allStages(t, func(t *testing.T, stage Stage) {
		e, _, _ := newEngine(t, stage)
		tx1, _ := e.Begin()
		ix, err := e.CreateIndex(tx1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if err := e.IndexInsert(tx1, ix, []byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Commit(tx1); err != nil {
			t.Fatal(err)
		}
		// Abort an update + insert + delete mix.
		tx2, _ := e.Begin()
		if err := e.IndexInsert(tx2, ix, []byte("zzz"), []byte("new")); err != nil {
			t.Fatal(err)
		}
		if err := e.IndexUpdate(tx2, ix, []byte("k0001"), []byte("changed")); err != nil {
			t.Fatal(err)
		}
		if _, err := e.IndexDelete(tx2, ix, []byte("k0002")); err != nil {
			t.Fatal(err)
		}
		if err := e.Abort(tx2); err != nil {
			t.Fatal(err)
		}
		tx3, _ := e.Begin()
		if _, ok, _ := e.IndexLookup(tx3, ix, []byte("zzz")); ok {
			t.Fatal("aborted index insert visible")
		}
		v, ok, err := e.IndexLookup(tx3, ix, []byte("k0001"))
		if err != nil || !ok || string(v) != "v1" {
			t.Fatalf("aborted update not undone: %q,%v,%v", v, ok, err)
		}
		v, ok, err = e.IndexLookup(tx3, ix, []byte("k0002"))
		if err != nil || !ok || string(v) != "v2" {
			t.Fatalf("aborted delete not undone: %q,%v,%v", v, ok, err)
		}
		if err := e.Commit(tx3); err != nil {
			t.Fatal(err)
		}
	})
}

func TestIndexScanRange(t *testing.T) {
	e, _, _ := newEngine(t, StageFinal)
	tx1, _ := e.Begin()
	ix, err := e.CreateIndex(tx1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := e.IndexInsert(tx1, ix, []byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Commit(tx1); err != nil {
		t.Fatal(err)
	}
	tx2, _ := e.Begin()
	var keys []string
	err = e.IndexScan(tx2, ix, []byte("k0100"), []byte("k0200"), func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 100 || keys[0] != "k0100" || keys[99] != "k0199" {
		t.Fatalf("range scan got %d keys [%s..%s]", len(keys), keys[0], keys[len(keys)-1])
	}
	if err := e.Commit(tx2); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryCommittedSurvive(t *testing.T) {
	allStages(t, func(t *testing.T, stage Stage) {
		vol := disk.NewMem(0)
		logStore := wal.NewMemStore()
		cfg := StageConfig(stage)
		cfg.Frames = 128
		e, err := Open(vol, logStore, cfg)
		if err != nil {
			t.Fatal(err)
		}
		store := createTable(t, e)
		tx1, _ := e.Begin()
		var rids []page.RID
		for i := 0; i < 100; i++ {
			rid, err := e.HeapInsert(tx1, store, []byte(fmt.Sprintf("committed-%d", i)))
			if err != nil {
				t.Fatal(err)
			}
			rids = append(rids, rid)
		}
		if err := e.Commit(tx1); err != nil {
			t.Fatal(err)
		}
		// In-flight transaction that must roll back at restart.
		tx2, _ := e.Begin()
		if _, err := e.HeapInsert(tx2, store, []byte("in-flight")); err != nil {
			t.Fatal(err)
		}
		if err := e.HeapUpdate(tx2, store, rids[0], []byte("tampered")); err != nil {
			t.Fatal(err)
		}
		// Force the tampering into the durable log so recovery must undo
		// it (rather than just losing it).
		if err := e.Log().Flush(e.Log().CurLSN()); err != nil {
			t.Fatal(err)
		}
		e.CrashHard()

		e2 := reopen(t, vol, logStore, stage)
		tx3, err := e2.Begin()
		if err != nil {
			t.Fatal(err)
		}
		for i, rid := range rids {
			got, err := e2.HeapRead(tx3, store, rid)
			if err != nil {
				t.Fatalf("committed row %d lost: %v", i, err)
			}
			want := fmt.Sprintf("committed-%d", i)
			if i == 0 {
				// Must be the original, not the in-flight tampering.
				want = "committed-0"
			}
			if string(got) != want {
				t.Fatalf("row %d = %q, want %q", i, got, want)
			}
		}
		// The in-flight insert must not be visible in a scan.
		count := 0
		if err := e2.HeapScan(tx3, store, func(rid page.RID, rec []byte) bool {
			if bytes.Equal(rec, []byte("in-flight")) {
				t.Error("in-flight insert survived recovery")
				return false
			}
			count++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if count != 100 {
			t.Fatalf("scan after recovery saw %d rows, want 100", count)
		}
		if err := e2.Commit(tx3); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCrashRecoveryUncommittedInvisible(t *testing.T) {
	// Without any flush, uncommitted work simply vanishes with the
	// volatile log tail.
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()
	e, err := Open(vol, logStore, StageConfig(StageFinal))
	if err != nil {
		t.Fatal(err)
	}
	store := createTable(t, e)
	tx1, _ := e.Begin()
	if _, err := e.HeapInsert(tx1, store, []byte("ghost")); err != nil {
		t.Fatal(err)
	}
	e.CrashHard() // no commit, no flush

	e2 := reopen(t, vol, logStore, StageFinal)
	// The store may not even exist (nothing durable); either way no ghost.
	for _, st := range e2.Space().Stores() {
		tx2, _ := e2.Begin()
		_ = e2.HeapScan(tx2, st, func(rid page.RID, rec []byte) bool {
			if bytes.Equal(rec, []byte("ghost")) {
				t.Error("unflushed uncommitted record visible after crash")
			}
			return true
		})
		_ = e2.Commit(tx2)
	}
}

func TestCrashRecoveryIndex(t *testing.T) {
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()
	cfg := StageConfig(StageFinal)
	cfg.Frames = 128
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tx1, _ := e.Begin()
	ix, err := e.CreateIndex(tx1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000 // force splits
	for i := 0; i < n; i++ {
		if err := e.IndexInsert(tx1, ix, []byte(fmt.Sprintf("key%06d", i)), []byte(fmt.Sprintf("val%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Commit(tx1); err != nil {
		t.Fatal(err)
	}
	ixStore := ix.Store()
	// Loser transaction touching the index, flushed but uncommitted.
	tx2, _ := e.Begin()
	if err := e.IndexInsert(tx2, ix, []byte("loser-key"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IndexDelete(tx2, ix, []byte("key000500")); err != nil {
		t.Fatal(err)
	}
	if err := e.Log().Flush(e.Log().CurLSN()); err != nil {
		t.Fatal(err)
	}
	e.CrashHard()

	e2 := reopen(t, vol, logStore, StageFinal)
	ix2, err := e2.OpenIndex(ixStore)
	if err != nil {
		t.Fatal(err)
	}
	tx3, _ := e2.Begin()
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%06d", i))
		v, ok, err := e2.IndexLookup(tx3, ix2, k)
		if err != nil || !ok {
			t.Fatalf("committed key %s lost after recovery: %v %v", k, ok, err)
		}
		if want := fmt.Sprintf("val%d", i); string(v) != want {
			t.Fatalf("key %s = %q, want %q", k, v, want)
		}
	}
	if _, ok, _ := e2.IndexLookup(tx3, ix2, []byte("loser-key")); ok {
		t.Fatal("loser insert survived recovery")
	}
	if err := e2.Commit(tx3); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointShortensRecovery(t *testing.T) {
	for _, cleanerCkpt := range []bool{false, true} {
		name := "sweepCkpt"
		if cleanerCkpt {
			name = "cleanerCkpt"
		}
		t.Run(name, func(t *testing.T) {
			vol := disk.NewMem(0)
			logStore := wal.NewMemStore()
			cfg := StageConfig(StageFinal)
			cfg.Frames = 128
			cfg.CleanerCheckpoint = cleanerCkpt
			e, err := Open(vol, logStore, cfg)
			if err != nil {
				t.Fatal(err)
			}
			store := createTable(t, e)
			tx1, _ := e.Begin()
			rid, err := e.HeapInsert(tx1, store, []byte("pre-ckpt"))
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Commit(tx1); err != nil {
				t.Fatal(err)
			}
			if cleanerCkpt {
				e.Pool().CleanerSweep()
			}
			if err := e.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			tx2, _ := e.Begin()
			rid2, err := e.HeapInsert(tx2, store, []byte("post-ckpt"))
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Commit(tx2); err != nil {
				t.Fatal(err)
			}
			e.CrashHard()

			e2 := reopen(t, vol, logStore, StageFinal)
			tx3, _ := e2.Begin()
			if got, err := e2.HeapRead(tx3, store, rid); err != nil || string(got) != "pre-ckpt" {
				t.Fatalf("pre-ckpt row: %q, %v", got, err)
			}
			if got, err := e2.HeapRead(tx3, store, rid2); err != nil || string(got) != "post-ckpt" {
				t.Fatalf("post-ckpt row: %q, %v", got, err)
			}
			if err := e2.Commit(tx3); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConcurrentTransactionsDisjointTables(t *testing.T) {
	// The record-insert microbenchmark shape: one private table per
	// worker, no logical contention.
	allStages(t, func(t *testing.T, stage Stage) {
		e, _, _ := newEngine(t, stage)
		const g, n = 4, 100
		stores := make([]uint32, g)
		for i := range stores {
			s := createTable(t, e)
			stores[i] = s
		}
		var wg sync.WaitGroup
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				txw, err := e.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < n; i++ {
					if _, err := e.HeapInsert(txw, stores[w], []byte(fmt.Sprintf("w%d-row%d", w, i))); err != nil {
						t.Errorf("worker %d insert %d: %v", w, i, err)
						return
					}
					if i%25 == 24 {
						if err := e.Commit(txw); err != nil {
							t.Error(err)
							return
						}
						if txw, err = e.Begin(); err != nil {
							t.Error(err)
							return
						}
					}
				}
				if err := e.Commit(txw); err != nil {
					t.Error(err)
				}
			}(w)
		}
		wg.Wait()
		// Verify counts.
		for w := 0; w < g; w++ {
			txv, _ := e.Begin()
			count := 0
			if err := e.HeapScan(txv, stores[w], func(page.RID, []byte) bool {
				count++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if count != n {
				t.Fatalf("store %d has %d rows, want %d", w, count, n)
			}
			if err := e.Commit(txv); err != nil {
				t.Fatal(err)
			}
		}
	})
}

func TestRowLockConflictBlocksAndResolves(t *testing.T) {
	e, _, _ := newEngine(t, StageFinal)
	store := createTable(t, e)
	tx1, _ := e.Begin()
	rid, err := e.HeapInsert(tx1, store, []byte("v0"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(tx1); err != nil {
		t.Fatal(err)
	}
	// tx2 updates and holds the X lock; tx3's read must wait for commit.
	tx2, _ := e.Begin()
	if err := e.HeapUpdate(tx2, store, rid, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	readDone := make(chan string, 1)
	go func() {
		tx3, _ := e.Begin()
		got, err := e.HeapRead(tx3, store, rid)
		if err != nil {
			readDone <- "err:" + err.Error()
			return
		}
		_ = e.Commit(tx3)
		readDone <- string(got)
	}()
	if err := e.Commit(tx2); err != nil {
		t.Fatal(err)
	}
	if got := <-readDone; got != "v1" {
		t.Fatalf("reader saw %q, want v1 (committed)", got)
	}
}

func TestLockEscalation(t *testing.T) {
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()
	cfg := StageConfig(StageFinal)
	cfg.EscalateAfter = 50
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	store := createTable(t, e)
	tx1, _ := e.Begin()
	for i := 0; i < 200; i++ {
		if _, err := e.HeapInsert(tx1, store, []byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	// After escalation the transaction holds a store-level X lock.
	if _, ok := tx1.Escalated(store); !ok {
		t.Fatal("transaction never escalated despite 200 row locks (threshold 50)")
	}
	if err := e.Commit(tx1); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleCommitFails(t *testing.T) {
	e, _, _ := newEngine(t, StageFinal)
	tx1, _ := e.Begin()
	if err := e.Commit(tx1); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(tx1); err == nil {
		t.Fatal("double commit succeeded")
	}
}

func TestStageConfigPresets(t *testing.T) {
	base := StageConfig(StageBaseline)
	if base.Buffer.AtomicPin || base.LogDesign != wal.DesignCoupled || !base.Space.LatchInCS {
		t.Errorf("baseline preset wrong: %+v", base)
	}
	final := StageConfig(StageFinal)
	if !final.Buffer.TransitBypass || final.LogDesign != wal.DesignConsolidated ||
		final.ProbeLockTable || !final.CleanerCheckpoint {
		t.Errorf("final preset wrong: %+v", final)
	}
	for _, s := range Stages() {
		if s.String() == "unknown" {
			t.Errorf("stage %d has no name", s)
		}
	}
}

func TestEngineStatsPopulated(t *testing.T) {
	e, _, _ := newEngine(t, StageFinal)
	store := createTable(t, e)
	tx1, _ := e.Begin()
	for i := 0; i < 50; i++ {
		if _, err := e.HeapInsert(tx1, store, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Commit(tx1); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Log.Inserts == 0 || st.Lock.Acquires == 0 || st.Space.Allocs == 0 || st.Tx.Commits != 2 {
		t.Errorf("stats look empty: %+v", st)
	}
}
