package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/wal"
)

// TestHeapSlotHintReuse verifies the frame slot hint keeps tombstone
// reuse working: a delete lowers the hint, so the next insert lands in
// the freed slot instead of growing the directory (or worse, a new
// page).
func TestHeapSlotHintReuse(t *testing.T) {
	cfg := StageConfig(StageFinal)
	cfg.Frames = 128
	e, err := Open(disk.NewMem(0), wal.NewMemStore(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	store := createTable(t, e)

	tx1, _ := e.Begin()
	var rids []page.RID
	for i := 0; i < 40; i++ {
		rid, err := e.HeapInsert(tx1, store, []byte("record-payload"))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := e.Commit(tx1); err != nil {
		t.Fatal(err)
	}
	if rids[0].Page != rids[39].Page {
		t.Skip("records spread over multiple pages; hint reuse needs one page")
	}

	victim := rids[7]
	tx2, _ := e.Begin()
	if err := e.HeapDelete(tx2, store, victim); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(tx2); err != nil {
		t.Fatal(err)
	}

	tx3, _ := e.Begin()
	rid, err := e.HeapInsert(tx3, store, []byte("reused-slot!!!"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(tx3); err != nil {
		t.Fatal(err)
	}
	if rid != victim {
		t.Fatalf("insert after delete got %v, want reuse of %v", rid, victim)
	}

	// And the hint advances: the next insert must not re-scan into
	// occupied territory (functionally: it simply lands on a fresh slot).
	tx4, _ := e.Begin()
	rid2, err := e.HeapInsert(tx4, store, []byte("fresh-slot"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(tx4); err != nil {
		t.Fatal(err)
	}
	if rid2 == victim {
		t.Fatalf("second insert reused an occupied slot %v", rid2)
	}
}

// TestHeapSlotHintAbortReuse locks in the rollback path's hint
// maintenance: undoing an insert tombstones the slot AND lowers the
// hint, so the very next insert reuses it.
func TestHeapSlotHintAbortReuse(t *testing.T) {
	cfg := StageConfig(StageFinal)
	cfg.Frames = 128
	e, err := Open(disk.NewMem(0), wal.NewMemStore(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	store := createTable(t, e)

	tx1, _ := e.Begin()
	base, err := e.HeapInsert(tx1, store, []byte("keeper"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(tx1); err != nil {
		t.Fatal(err)
	}

	tx2, _ := e.Begin()
	doomed, err := e.HeapInsert(tx2, store, []byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Abort(tx2); err != nil {
		t.Fatal(err)
	}

	tx3, _ := e.Begin()
	rid, err := e.HeapInsert(tx3, store, []byte("recycled"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(tx3); err != nil {
		t.Fatal(err)
	}
	if rid != doomed {
		t.Fatalf("insert after abort got %v, want reuse of %v", rid, doomed)
	}
	_ = base
}

// TestHeapInsertAllocRace hammers one heap store from many writers so
// page allocations constantly race the last-page hint. A reader that
// beats the allocator to the fix of a freshly claimed page sees its raw
// zeroed image — which looks writable (heapTop 0 reads as an empty
// page) — so without the page-type guard this corrupts the unformatted
// page, and without FixNew's takeover path the allocator errors with
// "page already cached". Every insert must succeed and every record
// must be readable afterwards.
func TestHeapInsertAllocRace(t *testing.T) {
	e, _, _ := newEngine(t, StageFinal)
	store := createTable(t, e)

	const writers = 8
	const perWriter = 300
	// Big enough records that pages fill after a handful of inserts,
	// keeping the allocation rate (and the race window) high.
	payload := make([]byte, 512)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				txn, err := e.Begin()
				if err != nil {
					errs <- err
					return
				}
				if _, err := e.HeapInsert(txn, store, payload); err != nil {
					_ = e.Abort(txn)
					errs <- fmt.Errorf("writer %d insert %d: %w", w, i, err)
					return
				}
				if err := e.Commit(txn); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	rd, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer e.Abort(rd)
	n := 0
	if err := e.HeapScan(rd, store, func(rid page.RID, rec []byte) bool {
		if len(rec) != len(payload) {
			t.Errorf("record %v has %d bytes, want %d", rid, len(rec), len(payload))
		}
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if want := writers * perWriter; n != want {
		t.Fatalf("scan found %d records, want %d", n, want)
	}
}
