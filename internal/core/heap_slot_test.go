package core

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/wal"
)

// TestHeapSlotHintReuse verifies the frame slot hint keeps tombstone
// reuse working: a delete lowers the hint, so the next insert lands in
// the freed slot instead of growing the directory (or worse, a new
// page).
func TestHeapSlotHintReuse(t *testing.T) {
	cfg := StageConfig(StageFinal)
	cfg.Frames = 128
	e, err := Open(disk.NewMem(0), wal.NewMemStore(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	store := createTable(t, e)

	tx1, _ := e.Begin()
	var rids []page.RID
	for i := 0; i < 40; i++ {
		rid, err := e.HeapInsert(tx1, store, []byte("record-payload"))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := e.Commit(tx1); err != nil {
		t.Fatal(err)
	}
	if rids[0].Page != rids[39].Page {
		t.Skip("records spread over multiple pages; hint reuse needs one page")
	}

	victim := rids[7]
	tx2, _ := e.Begin()
	if err := e.HeapDelete(tx2, store, victim); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(tx2); err != nil {
		t.Fatal(err)
	}

	tx3, _ := e.Begin()
	rid, err := e.HeapInsert(tx3, store, []byte("reused-slot!!!"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(tx3); err != nil {
		t.Fatal(err)
	}
	if rid != victim {
		t.Fatalf("insert after delete got %v, want reuse of %v", rid, victim)
	}

	// And the hint advances: the next insert must not re-scan into
	// occupied territory (functionally: it simply lands on a fresh slot).
	tx4, _ := e.Begin()
	rid2, err := e.HeapInsert(tx4, store, []byte("fresh-slot"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(tx4); err != nil {
		t.Fatal(err)
	}
	if rid2 == victim {
		t.Fatalf("second insert reused an occupied slot %v", rid2)
	}
}

// TestHeapSlotHintAbortReuse locks in the rollback path's hint
// maintenance: undoing an insert tombstones the slot AND lowers the
// hint, so the very next insert reuses it.
func TestHeapSlotHintAbortReuse(t *testing.T) {
	cfg := StageConfig(StageFinal)
	cfg.Frames = 128
	e, err := Open(disk.NewMem(0), wal.NewMemStore(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	store := createTable(t, e)

	tx1, _ := e.Begin()
	base, err := e.HeapInsert(tx1, store, []byte("keeper"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(tx1); err != nil {
		t.Fatal(err)
	}

	tx2, _ := e.Begin()
	doomed, err := e.HeapInsert(tx2, store, []byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Abort(tx2); err != nil {
		t.Fatal(err)
	}

	tx3, _ := e.Begin()
	rid, err := e.HeapInsert(tx3, store, []byte("recycled"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(tx3); err != nil {
		t.Fatal(err)
	}
	if rid != doomed {
		t.Fatalf("insert after abort got %v, want reuse of %v", rid, doomed)
	}
	_ = base
}
