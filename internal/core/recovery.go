package core

import (
	"fmt"
	"io"

	"repro/internal/btree"
	"repro/internal/page"
	"repro/internal/pageop"
	"repro/internal/space"
	"repro/internal/sync2"
	"repro/internal/wal"
)

// ARIES restart recovery: analysis → redo → (directory rebuild) → undo.
//
// Allocation metadata is not logged; after redo, every page header carries
// its owning store and type, so the free-space manager and store directory
// are rebuilt by scanning pages (through the buffer pool, so redone-but-
// unflushed state is visible). B-tree roots are rediscovered from the root
// flag in node headers.

// loserState tracks one in-flight transaction during analysis.
type loserState struct {
	lastLSN  wal.LSN
	undoNext wal.LSN
}

// restart runs crash recovery. Called from Open when the log is non-empty.
func (e *Engine) restart() error {
	losers, _, redoStart, maxTxID, err := e.analyze()
	if err != nil {
		return fmt.Errorf("analysis: %w", err)
	}
	if err := e.redo(redoStart); err != nil {
		return fmt.Errorf("redo: %w", err)
	}
	if err := e.rebuildDirectory(); err != nil {
		return fmt.Errorf("directory rebuild: %w", err)
	}
	e.txns.NextIDFloor(maxTxID)
	if err := e.undoLosers(losers); err != nil {
		return fmt.Errorf("undo: %w", err)
	}
	return e.Checkpoint()
}

// analyze scans the log from the last checkpoint, reconstructing the
// active-transaction table and dirty-page table.
func (e *Engine) analyze() (losers map[uint64]*loserState, dpt map[page.ID]wal.LSN, redoStart wal.LSN, maxTxID uint64, err error) {
	losers = make(map[uint64]*loserState)
	dpt = make(map[page.ID]wal.LSN)
	master, err := e.logStore.Master()
	if err != nil {
		return nil, nil, 0, 0, err
	}
	lowWater := wal.NullLSN

	sc := wal.NewScanner(e.logStore, master)
	for {
		rec, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, 0, 0, err
		}
		if rec.TxID > maxTxID {
			maxTxID = rec.TxID
		}
		switch rec.Type {
		case wal.RecTxBegin:
			losers[rec.TxID] = &loserState{lastLSN: rec.LSN, undoNext: wal.NullLSN}
		case wal.RecUpdate:
			l := losers[rec.TxID]
			if l == nil {
				l = &loserState{}
				losers[rec.TxID] = l
			}
			l.lastLSN = rec.LSN
			l.undoNext = rec.LSN
			if rec.Page != 0 {
				if _, ok := dpt[rec.Page]; !ok {
					dpt[rec.Page] = rec.LSN
				}
			}
		case wal.RecCLR:
			l := losers[rec.TxID]
			if l == nil {
				l = &loserState{}
				losers[rec.TxID] = l
			}
			l.lastLSN = rec.LSN
			l.undoNext = rec.UndoNext
			if rec.Page != 0 {
				if _, ok := dpt[rec.Page]; !ok {
					dpt[rec.Page] = rec.LSN
				}
			}
		case wal.RecTxCommit, wal.RecTxEnd:
			delete(losers, rec.TxID)
		case wal.RecTxAbort:
			if l := losers[rec.TxID]; l != nil {
				l.lastLSN = rec.LSN
			}
		case wal.RecCkptEnd:
			data, err := wal.DecodeCheckpoint(rec.Redo)
			if err != nil {
				return nil, nil, 0, 0, err
			}
			for _, t := range data.Txs {
				if _, seen := losers[t.TxID]; !seen {
					losers[t.TxID] = &loserState{lastLSN: t.LastLSN, undoNext: t.UndoNext}
				}
				if t.TxID > maxTxID {
					maxTxID = t.TxID
				}
			}
			for _, d := range data.Dirty {
				if d.Page == 0 {
					// Cleaner-tracked low-water mark (§7.7 checkpoints).
					if lowWater == wal.NullLSN || d.RecLSN < lowWater {
						lowWater = d.RecLSN
					}
					continue
				}
				if cur, ok := dpt[d.Page]; !ok || d.RecLSN < cur {
					dpt[d.Page] = d.RecLSN
				}
			}
		}
	}
	// Redo starts at the oldest recLSN we know about.
	redoStart = wal.NullLSN
	for _, l := range dpt {
		if redoStart == wal.NullLSN || l < redoStart {
			redoStart = l
		}
	}
	if lowWater != wal.NullLSN && (redoStart == wal.NullLSN || lowWater < redoStart) {
		redoStart = lowWater
	}
	if redoStart == wal.NullLSN || (master != wal.NullLSN && master < redoStart) {
		// No dirty info: be conservative and start at the checkpoint (or
		// the log head when there is none). Page-LSN gating makes extra
		// redo scanning harmless.
		if master != wal.NullLSN {
			redoStart = master
		} else {
			redoStart = wal.NullLSN // scanner clamps to log start
		}
	}
	// Drop losers that never logged anything undoable.
	for id, l := range losers {
		if l.lastLSN == wal.NullLSN {
			delete(losers, id)
		}
	}
	return losers, dpt, redoStart, maxTxID, nil
}

// redo replays every page update from redoStart, gated by page LSN.
func (e *Engine) redo(redoStart wal.LSN) error {
	sc := wal.NewScanner(e.logStore, redoStart)
	for {
		rec, err := sc.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if rec.Page == 0 || len(rec.Redo) == 0 {
			continue
		}
		if rec.Type != wal.RecUpdate && rec.Type != wal.RecCLR {
			continue
		}
		// No per-page DPT skip: with cleaner-fed checkpoints the table
		// holds only a low-water mark, and analysis-derived recLSNs can
		// postdate unflushed pre-checkpoint updates. The page-LSN gate
		// below is the sound (and sufficient) redo filter.
		// The volume may be shorter than the page id if growth raced the
		// crash; extend it (fresh pages read zeroed, the ops reformat them).
		for uint64(rec.Page) > e.vol.NumPages() {
			if _, err := e.vol.Grow(space.ExtentSize); err != nil {
				return err
			}
		}
		f, err := e.fix(rec.Page, sync2.LatchEX)
		if err != nil {
			return err
		}
		if f.Page().LSN() < uint64(rec.LSN) {
			op, err := pageop.Decode(rec.Redo)
			if err != nil {
				e.pool.Unfix(f, sync2.LatchEX)
				return err
			}
			if err := pageop.Apply(f.Page(), op); err != nil {
				e.pool.Unfix(f, sync2.LatchEX)
				return fmt.Errorf("redo %v on %v at %v: %w", op.Kind, rec.Page, rec.LSN, err)
			}
			f.Page().SetLSN(uint64(rec.LSN))
			f.MarkDirty(rec.LSN)
		}
		e.pool.Unfix(f, sync2.LatchEX)
	}
}

// rebuildDirectory reconstructs the free-space manager and store directory
// from page headers (read through the buffer pool so redone state wins).
func (e *Engine) rebuildDirectory() error {
	n := e.vol.NumPages()
	for pid := page.ID(1); uint64(pid) <= n; pid++ {
		f, err := e.fix(pid, sync2.LatchSH)
		if err != nil {
			return err
		}
		p := f.Page()
		switch p.Type() {
		case page.TypeHeap:
			e.sm.RestoreStore(p.Store(), space.KindHeap)
			e.sm.RestorePage(pid, p.Store())
		case page.TypeBTree:
			e.sm.RestoreStore(p.Store(), space.KindBTree)
			e.sm.RestorePage(pid, p.Store())
			if btree.PageIsRoot(p) {
				if err := e.sm.SetRoot(p.Store(), pid); err != nil {
					e.pool.Unfix(f, sync2.LatchSH)
					return err
				}
			}
		}
		e.pool.Unfix(f, sync2.LatchSH)
	}
	e.sm.CoverVolume()
	return nil
}

// undoLosers rolls back every in-flight transaction found by analysis.
func (e *Engine) undoLosers(losers map[uint64]*loserState) error {
	for id, l := range losers {
		undoNext := l.undoNext
		if undoNext == wal.NullLSN {
			undoNext = l.lastLSN
		}
		t := e.txns.Restore(id, l.lastLSN, undoNext)
		if err := e.rollback(id, undoNext); err != nil {
			return fmt.Errorf("tx %d: %w", id, err)
		}
		if _, err := e.log.Insert(&wal.Record{
			Type: wal.RecTxEnd, TxID: id, PrevLSN: t.LastLSN(),
		}); err != nil {
			return err
		}
		if err := e.txns.Abort(t); err != nil {
			return err
		}
	}
	return e.log.Flush(e.log.CurLSN())
}
