package core

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/btree"
	"repro/internal/page"
	"repro/internal/pageop"
	"repro/internal/space"
	"repro/internal/sync2"
	"repro/internal/wal"
)

// RecoveryStats describes the restart recovery performed at Open.
type RecoveryStats struct {
	Ran              bool          // a non-empty log triggered recovery
	Analysis         time.Duration // log scan rebuilding tx + dirty tables
	Redo             time.Duration // replay + directory rebuild
	Undo             time.Duration // loser rollback
	RecordsScanned   uint64        // records seen by the redo scan
	RecordsReplayed  uint64        // records applied (survived the page-LSN gate)
	Losers           int           // in-flight transactions rolled back
	TornBytesClipped int64         // torn tail bytes discarded before replay
	SegmentsArchived uint64        // log segments archived since Open
	RedoWorkers      int           // redo parallelism used
	RedoStart        wal.LSN       // where the redo scan began
	LogEnd           wal.LSN       // log extent at recovery time
}

// ARIES restart recovery: analysis → redo → (directory rebuild) → undo.
//
// Allocation metadata is not logged; after redo, every page header carries
// its owning store and type, so the free-space manager and store directory
// are rebuilt by scanning pages (through the buffer pool, so redone-but-
// unflushed state is visible). B-tree roots are rediscovered from the root
// flag in node headers.

// loserState tracks one in-flight transaction during analysis.
type loserState struct {
	lastLSN  wal.LSN
	undoNext wal.LSN
}

// restart runs crash recovery. Called from Open when the log is non-empty.
func (e *Engine) restart() error {
	rs := &e.recovery
	rs.Ran = true
	rs.RedoWorkers = e.cfg.RedoWorkers
	rs.LogEnd = wal.LSN(e.logStore.Size())
	start := time.Now()
	losers, _, redoStart, maxTxID, err := e.analyze()
	if err != nil {
		return fmt.Errorf("analysis: %w", err)
	}
	rs.Analysis = time.Since(start)
	rs.RedoStart = redoStart
	rs.Losers = len(losers)
	start = time.Now()
	if err := e.redo(redoStart); err != nil {
		return fmt.Errorf("redo: %w", err)
	}
	if err := e.rebuildDirectory(); err != nil {
		return fmt.Errorf("directory rebuild: %w", err)
	}
	rs.Redo = time.Since(start)
	e.txns.NextIDFloor(maxTxID)
	if e.cfg.PLP {
		// Losers may carry logical undo against partitioned indexes, and
		// routing a key to its segment needs the partition map's root
		// table. Segment roots never change after registration (only
		// ownership bounds do), so the pre-undo map is safe to route
		// with even when a loser was mid-migration; plpInit re-reads the
		// catalog after undo for the authoritative post-recovery map.
		if m, rid, err := e.plpReadCatalog(); err == nil && m != nil {
			e.plpMap.Store(m)
			e.plpRID = rid
		}
	}
	start = time.Now()
	if err := e.undoLosers(losers); err != nil {
		return fmt.Errorf("undo: %w", err)
	}
	rs.Undo = time.Since(start)
	return e.Checkpoint()
}

// analyze scans the log from the last checkpoint, reconstructing the
// active-transaction table and dirty-page table.
func (e *Engine) analyze() (losers map[uint64]*loserState, dpt map[page.ID]wal.LSN, redoStart wal.LSN, maxTxID uint64, err error) {
	losers = make(map[uint64]*loserState)
	dpt = make(map[page.ID]wal.LSN)
	master, err := e.logStore.Master()
	if err != nil {
		return nil, nil, 0, 0, err
	}
	lowWater := wal.NullLSN

	sc := wal.NewScanner(e.logStore, master)
	for {
		rec, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, 0, 0, err
		}
		if rec.TxID > maxTxID {
			maxTxID = rec.TxID
		}
		switch rec.Type {
		case wal.RecTxBegin:
			losers[rec.TxID] = &loserState{lastLSN: rec.LSN, undoNext: wal.NullLSN}
		case wal.RecUpdate:
			l := losers[rec.TxID]
			if l == nil {
				l = &loserState{}
				losers[rec.TxID] = l
			}
			l.lastLSN = rec.LSN
			l.undoNext = rec.LSN
			if rec.Page != 0 {
				if _, ok := dpt[rec.Page]; !ok {
					dpt[rec.Page] = rec.LSN
				}
			}
		case wal.RecCLR:
			l := losers[rec.TxID]
			if l == nil {
				l = &loserState{}
				losers[rec.TxID] = l
			}
			l.lastLSN = rec.LSN
			l.undoNext = rec.UndoNext
			if rec.Page != 0 {
				if _, ok := dpt[rec.Page]; !ok {
					dpt[rec.Page] = rec.LSN
				}
			}
		case wal.RecTxCommit, wal.RecTxEnd:
			delete(losers, rec.TxID)
		case wal.RecTxAbort:
			if l := losers[rec.TxID]; l != nil {
				l.lastLSN = rec.LSN
			}
		case wal.RecCkptEnd:
			data, err := wal.DecodeCheckpoint(rec.Redo)
			if err != nil {
				return nil, nil, 0, 0, err
			}
			for _, t := range data.Txs {
				if _, seen := losers[t.TxID]; !seen {
					losers[t.TxID] = &loserState{lastLSN: t.LastLSN, undoNext: t.UndoNext}
				}
				if t.TxID > maxTxID {
					maxTxID = t.TxID
				}
			}
			for _, d := range data.Dirty {
				if d.Page == 0 {
					// Cleaner-tracked low-water mark (§7.7 checkpoints).
					if lowWater == wal.NullLSN || d.RecLSN < lowWater {
						lowWater = d.RecLSN
					}
					continue
				}
				if cur, ok := dpt[d.Page]; !ok || d.RecLSN < cur {
					dpt[d.Page] = d.RecLSN
				}
			}
		}
	}
	// Redo starts at the oldest recLSN we know about.
	redoStart = wal.NullLSN
	for _, l := range dpt {
		if redoStart == wal.NullLSN || l < redoStart {
			redoStart = l
		}
	}
	if lowWater != wal.NullLSN && (redoStart == wal.NullLSN || lowWater < redoStart) {
		redoStart = lowWater
	}
	if redoStart == wal.NullLSN || (master != wal.NullLSN && master < redoStart) {
		// No dirty info: be conservative and start at the checkpoint (or
		// the log head when there is none). Page-LSN gating makes extra
		// redo scanning harmless.
		if master != wal.NullLSN {
			redoStart = master
		} else {
			redoStart = wal.NullLSN // scanner clamps to log start
		}
	}
	// Drop losers that never logged anything undoable.
	for id, l := range losers {
		if l.lastLSN == wal.NullLSN {
			delete(losers, id)
		}
	}
	return losers, dpt, redoStart, maxTxID, nil
}

// redo replays every page update from redoStart, gated by page LSN.
// With RedoWorkers > 1 the replay fans out hash-partitioned by page ID:
// every page maps to exactly one worker, so per-page LSN order — the only
// ordering redo needs — is preserved while distinct pages replay in
// parallel (the same partitioning argument as the sharded buffer pool).
func (e *Engine) redo(redoStart wal.LSN) error {
	if e.cfg.RedoWorkers > 1 {
		return e.redoParallel(redoStart, e.cfg.RedoWorkers)
	}
	return e.redoSerial(redoStart)
}

// redoApplies reports whether a record carries page redo work.
func redoApplies(rec *wal.Record) bool {
	if rec.Page == 0 || len(rec.Redo) == 0 {
		return false
	}
	return rec.Type == wal.RecUpdate || rec.Type == wal.RecCLR
}

// growFor extends the volume to cover pid: the volume may be shorter than
// a logged page id if growth raced the crash (fresh pages read zeroed,
// the redone ops reformat them).
func (e *Engine) growFor(pid page.ID) error {
	for uint64(pid) > e.vol.NumPages() {
		if _, err := e.vol.Grow(space.ExtentSize); err != nil {
			return err
		}
	}
	return nil
}

// applyRedo replays one record, gated by page LSN, reporting whether it
// was applied.
//
// No per-page DPT skip: with cleaner-fed checkpoints the table holds only
// a low-water mark, and analysis-derived recLSNs can postdate unflushed
// pre-checkpoint updates. The page-LSN gate is the sound (and sufficient)
// redo filter.
func (e *Engine) applyRedo(rec *wal.Record) (bool, error) {
	f, err := e.fix(rec.Page, sync2.LatchEX)
	if err != nil {
		return false, err
	}
	defer e.pool.Unfix(f, sync2.LatchEX)
	if f.Page().LSN() >= uint64(rec.LSN) {
		return false, nil
	}
	op, err := pageop.Decode(rec.Redo)
	if err != nil {
		return false, err
	}
	if err := pageop.Apply(f.Page(), op); err != nil {
		return false, fmt.Errorf("redo %v on %v at %v: %w", op.Kind, rec.Page, rec.LSN, err)
	}
	f.Page().SetLSN(uint64(rec.LSN))
	f.MarkDirty(rec.LSN)
	return true, nil
}

// redoSerial is the single-threaded replay path (RedoWorkers == 1).
func (e *Engine) redoSerial(redoStart wal.LSN) error {
	sc := wal.NewScanner(e.logStore, redoStart)
	for {
		rec, err := sc.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		e.recovery.RecordsScanned++
		if !redoApplies(rec) {
			continue
		}
		if err := e.growFor(rec.Page); err != nil {
			return err
		}
		applied, err := e.applyRedo(rec)
		if err != nil {
			return err
		}
		if applied {
			e.recovery.RecordsReplayed++
		}
	}
}

// redoHash maps a page to its redo worker.
func redoHash(pid page.ID, workers int) int {
	return int((uint64(pid) * 0x9e3779b97f4a7c15 >> 33) % uint64(workers))
}

// redoParallel replays the log with a serial dispatcher (which also owns
// volume growth) fanning records out to page-partitioned workers.
func (e *Engine) redoParallel(redoStart wal.LSN, workers int) error {
	chans := make([]chan *wal.Record, workers)
	errs := make([]error, workers)
	var replayed atomic.Uint64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for i := range chans {
		chans[i] = make(chan *wal.Record, 256)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for rec := range chans[i] {
				if errs[i] != nil {
					continue // drain after failure
				}
				applied, err := e.applyRedo(rec)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				if applied {
					replayed.Add(1)
				}
			}
		}(i)
	}
	var scanErr error
	sc := wal.NewScanner(e.logStore, redoStart)
	for !failed.Load() {
		rec, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			scanErr = err
			break
		}
		e.recovery.RecordsScanned++
		if !redoApplies(rec) {
			continue
		}
		if err := e.growFor(rec.Page); err != nil {
			scanErr = err
			break
		}
		chans[redoHash(rec.Page, workers)] <- rec
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	e.recovery.RecordsReplayed += replayed.Load()
	if scanErr != nil {
		return scanErr
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// rebuildDirectory reconstructs the free-space manager and store directory
// from page headers (read through the buffer pool so redone state wins).
func (e *Engine) rebuildDirectory() error {
	n := e.vol.NumPages()
	for pid := page.ID(1); uint64(pid) <= n; pid++ {
		f, err := e.fix(pid, sync2.LatchSH)
		if err != nil {
			return err
		}
		p := f.Page()
		switch p.Type() {
		case page.TypeHeap:
			e.sm.RestoreStore(p.Store(), space.KindHeap)
			e.sm.RestorePage(pid, p.Store())
		case page.TypeBTree:
			e.sm.RestoreStore(p.Store(), space.KindBTree)
			e.sm.RestorePage(pid, p.Store())
			if btree.PageIsRoot(p) {
				if err := e.sm.SetRoot(p.Store(), pid); err != nil {
					e.pool.Unfix(f, sync2.LatchSH)
					return err
				}
			}
		}
		e.pool.Unfix(f, sync2.LatchSH)
	}
	e.sm.CoverVolume()
	return nil
}

// undoLosers rolls back every in-flight transaction found by analysis, in
// ascending ID order. The order is fixed so recovery is deterministic:
// CLRs land at identical LSNs on every replay of the same log, which is
// what lets the parallel-redo equivalence test demand byte-identical
// state.
func (e *Engine) undoLosers(losers map[uint64]*loserState) error {
	ids := make([]uint64, 0, len(losers))
	for id := range losers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		l := losers[id]
		undoNext := l.undoNext
		if undoNext == wal.NullLSN {
			undoNext = l.lastLSN
		}
		t := e.txns.Restore(id, l.lastLSN, undoNext)
		if err := e.rollback(id, undoNext); err != nil {
			return fmt.Errorf("tx %d: %w", id, err)
		}
		if _, err := e.log.Insert(&wal.Record{
			Type: wal.RecTxEnd, TxID: id, PrevLSN: t.LastLSN(),
		}); err != nil {
			return err
		}
		if err := e.txns.Abort(t); err != nil {
			return err
		}
	}
	return e.log.Flush(e.log.CurLSN())
}
