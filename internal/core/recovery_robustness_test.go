package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/wal"
)

// openOver opens an engine over arbitrary stores with a given log design
// and redo parallelism.
func openOver(t *testing.T, vol disk.Volume, logStore wal.Store, design wal.Design, redoWorkers int) (*Engine, error) {
	t.Helper()
	cfg := StageConfig(StageFinal)
	cfg.Frames = 128
	cfg.LogDesign = design
	cfg.RedoWorkers = redoWorkers
	return Open(vol, logStore, cfg)
}

// buildCrashWorkload drives committed inserts, updates, aborts, an index,
// a mid-stream checkpoint, and two in-flight losers over the given
// stores, then pulls the plug. Returns the heap store, index store, and
// the committed rows a correct recovery must reproduce.
func buildCrashWorkload(t *testing.T, vol disk.Volume, logStore wal.Store, design wal.Design) (store, ixStore uint32, want map[int]string) {
	t.Helper()
	e, err := openOver(t, vol, logStore, design, 1)
	if err != nil {
		t.Fatal(err)
	}
	store = createTable(t, e)
	ct, _ := e.Begin()
	ix, err := e.CreateIndex(ct)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(ct); err != nil {
		t.Fatal(err)
	}
	ixStore = ix.Store()

	want = make(map[int]string)
	rids := make(map[int]page.RID)
	for i := 0; i < 80; i++ {
		tx, _ := e.Begin()
		v := fmt.Sprintf("row-%04d", i)
		rid, err := e.HeapInsert(tx, store, []byte(v))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.IndexInsert(tx, ix, []byte(fmt.Sprintf("k%04d", i)), []byte(v)); err != nil {
			t.Fatal(err)
		}
		if err := e.Commit(tx); err != nil {
			t.Fatal(err)
		}
		rids[i], want[i] = rid, v
		if i == 40 {
			if err := e.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Committed updates over earlier rows.
	for i := 0; i < 20; i++ {
		tx, _ := e.Begin()
		v := fmt.Sprintf("upd-%04d", i)
		if err := e.HeapUpdate(tx, store, rids[i], []byte(v)); err != nil {
			t.Fatal(err)
		}
		if err := e.Commit(tx); err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	// An aborted transaction: its updates must stay invisible.
	ab, _ := e.Begin()
	if err := e.HeapUpdate(ab, store, rids[30], []byte("aborted")); err != nil {
		t.Fatal(err)
	}
	if err := e.Abort(ab); err != nil {
		t.Fatal(err)
	}
	// Two losers caught mid-flight by the crash, their updates durable in
	// the log but never committed.
	l1, _ := e.Begin()
	l2, _ := e.Begin()
	if err := e.HeapUpdate(l1, store, rids[50], []byte("loser-1")); err != nil {
		t.Fatal(err)
	}
	if err := e.HeapUpdate(l2, store, rids[51], []byte("loser-2")); err != nil {
		t.Fatal(err)
	}
	if err := e.Log().Flush(e.Log().CurLSN()); err != nil {
		t.Fatal(err)
	}
	e.CrashHard()
	return store, ixStore, want
}

// verifyWorkload checks every committed row and the index after recovery.
func verifyWorkload(t *testing.T, e *Engine, store, ixStore uint32, want map[int]string) {
	t.Helper()
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]string)
	if err := e.HeapScan(tx, store, func(_ page.RID, rec []byte) bool {
		seen[string(rec)] = string(rec)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(want) {
		t.Fatalf("recovered %d rows, want %d", len(seen), len(want))
	}
	for _, v := range want {
		if _, ok := seen[v]; !ok {
			t.Fatalf("row %q missing after recovery", v)
		}
	}
	ix, err := e.OpenIndex(ixStore)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := ix.Verify(); err != nil || n != 80 {
		t.Fatalf("index Verify = %d keys, %v; want 80, nil", n, err)
	}
	if err := e.Commit(tx); err != nil {
		t.Fatal(err)
	}
}

// snapshotVolume reads every page of a closed-over volume.
func snapshotVolume(t *testing.T, v *disk.MemVolume) [][]byte {
	t.Helper()
	n := v.NumPages()
	out := make([][]byte, n)
	for i := uint64(0); i < n; i++ {
		buf := make([]byte, page.Size)
		if err := v.Read(page.ID(i+1), buf); err != nil {
			t.Fatal(err)
		}
		out[i] = buf
	}
	return out
}

// TestParallelRedoEquivalence recovers the same crash image serially and
// in parallel, for all three log designs, and demands byte-identical
// volumes afterwards: partitioned redo and sorted undo must be
// observationally indistinguishable from the serial pass.
func TestParallelRedoEquivalence(t *testing.T) {
	for _, d := range []wal.Design{wal.DesignCoupled, wal.DesignDecoupled, wal.DesignConsolidated} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			vol := disk.NewMem(0)
			logStore := wal.NewMemSegmentStore(wal.MinSegmentBytes)
			store, ixStore, want := buildCrashWorkload(t, vol, logStore, d)

			var snaps [][][]byte
			var scanned, replayed []uint64
			for _, workers := range []int{1, 8} {
				v := vol.Clone()
				ls := logStore.Clone()
				e, err := openOver(t, v, ls, d, workers)
				if err != nil {
					t.Fatalf("recovery with %d workers: %v", workers, err)
				}
				rs := e.Stats().Recovery
				if !rs.Ran {
					t.Fatalf("workers=%d: recovery did not run", workers)
				}
				if rs.RedoWorkers != workers {
					t.Fatalf("workers=%d: stats report %d", workers, rs.RedoWorkers)
				}
				verifyWorkload(t, e, store, ixStore, want)
				if err := e.Close(); err != nil {
					t.Fatal(err)
				}
				snaps = append(snaps, snapshotVolume(t, v))
				scanned = append(scanned, rs.RecordsScanned)
				replayed = append(replayed, rs.RecordsReplayed)
			}
			if scanned[0] != scanned[1] || replayed[0] != replayed[1] {
				t.Fatalf("serial scanned/replayed %d/%d, parallel %d/%d",
					scanned[0], replayed[0], scanned[1], replayed[1])
			}
			if len(snaps[0]) != len(snaps[1]) {
				t.Fatalf("volume sizes diverged: %d vs %d pages", len(snaps[0]), len(snaps[1]))
			}
			for i := range snaps[0] {
				if !bytes.Equal(snaps[0][i], snaps[1][i]) {
					t.Fatalf("page %d differs between serial and parallel recovery", i+1)
				}
			}
		})
	}
}

// TestCrashDuringCheckpoint leaves a dangling RecCkptBegin (the crash hit
// between begin and end); recovery must fall back to the last complete
// checkpoint and still reproduce every committed row.
func TestCrashDuringCheckpoint(t *testing.T) {
	vol := disk.NewMem(0)
	logStore := wal.NewMemSegmentStore(wal.MinSegmentBytes)
	e, err := openOver(t, vol, logStore, wal.DesignConsolidated, 1)
	if err != nil {
		t.Fatal(err)
	}
	store := createTable(t, e)
	var rids []page.RID
	for i := 0; i < 40; i++ {
		tx, _ := e.Begin()
		rid, err := e.HeapInsert(tx, store, []byte(fmt.Sprintf("ck-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Commit(tx); err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx, _ := e.Begin()
	rid, err := e.HeapInsert(tx, store, []byte("after-ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(tx); err != nil {
		t.Fatal(err)
	}
	// The interrupted checkpoint: begin record durable, end record never
	// written.
	if _, err := e.Log().Insert(&wal.Record{Type: wal.RecCkptBegin}); err != nil {
		t.Fatal(err)
	}
	if err := e.Log().Flush(e.Log().CurLSN()); err != nil {
		t.Fatal(err)
	}
	e.CrashHard()

	e2, err := openOver(t, vol, logStore, wal.DesignConsolidated, 0)
	if err != nil {
		t.Fatalf("recovery over dangling checkpoint begin: %v", err)
	}
	defer e2.Close()
	tx2, _ := e2.Begin()
	for i, r := range rids {
		if got, err := e2.HeapRead(tx2, store, r); err != nil || string(got) != fmt.Sprintf("ck-%d", i) {
			t.Fatalf("row %d = %q, %v", i, got, err)
		}
	}
	if got, err := e2.HeapRead(tx2, store, rid); err != nil || string(got) != "after-ckpt" {
		t.Fatalf("post-checkpoint row = %q, %v", got, err)
	}
	if err := e2.Commit(tx2); err != nil {
		t.Fatal(err)
	}
}

// TestCrashDuringSegmentRotation models a crash while the log was
// spilling across a segment boundary: a torn region that starts in one
// segment and runs into the (header-only) next. Recovery must clip the
// whole torn span and come up on the durable prefix.
func TestCrashDuringSegmentRotation(t *testing.T) {
	vol := disk.NewMem(0)
	logStore := wal.NewMemSegmentStore(wal.MinSegmentBytes)
	store, ixStore, want := buildCrashWorkload(t, vol, logStore, wal.DesignConsolidated)

	// Splatter garbage from the durable end across at least one segment
	// boundary — the in-flight rotation write the crash interrupted.
	end := logStore.DurableSize()
	garbage := bytes.Repeat([]byte{0xEE}, int(wal.MinSegmentBytes)+257)
	if err := logStore.WriteAt(garbage, end); err != nil {
		t.Fatal(err)
	}
	if logStore.Size() <= end {
		t.Fatal("garbage did not extend the log")
	}

	e, err := openOver(t, vol, logStore, wal.DesignConsolidated, 0)
	if err != nil {
		t.Fatalf("recovery after torn rotation: %v", err)
	}
	defer e.Close()
	rs := e.Stats().Recovery
	if rs.TornBytesClipped == 0 {
		t.Fatal("no torn bytes reported clipped")
	}
	verifyWorkload(t, e, store, ixStore, want)
}

// TestDoubleCrashDuringUndo crashes, then crashes again *during* the
// first recovery's undo pass (injected log-flush failure), and finally
// recovers for real: the second restart must pick up over the partial
// CLR trail without double-applying compensations.
func TestDoubleCrashDuringUndo(t *testing.T) {
	vol := disk.NewMem(0)
	logStore := wal.NewMemSegmentStore(wal.MinSegmentBytes)
	store, ixStore, want := buildCrashWorkload(t, vol, logStore, wal.DesignConsolidated)

	// First recovery attempt: the log device dies mid-restart. Every
	// flush from here on fails, so the CLRs from undo (and the recovery
	// checkpoint) can never harden.
	logStore.FailFlushes(0)
	if _, err := openOver(t, vol, logStore, wal.DesignConsolidated, 0); err == nil {
		t.Fatal("recovery succeeded with a dead log device")
	}
	// The machine goes down with it; whatever was not durable is gone.
	logStore.FailFlushes(-1)
	logStore.Crash()

	e, err := openOver(t, vol, logStore, wal.DesignConsolidated, 0)
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer e.Close()
	verifyWorkload(t, e, store, ixStore, want)
}

// TestCorruptionBelowHorizonRefusesStartup flips one durable byte in a
// sealed segment: recovery must refuse to start rather than silently
// truncate committed history. A torn tail at the same position in the
// *active* segment is business as usual (covered above) — the difference
// is provable durability.
func TestCorruptionBelowHorizonRefusesStartup(t *testing.T) {
	vol := disk.NewMem(0)
	logStore := wal.NewMemSegmentStore(wal.MinSegmentBytes)
	e, err := openOver(t, vol, logStore, wal.DesignConsolidated, 1)
	if err != nil {
		t.Fatal(err)
	}
	store := createTable(t, e)
	// Checkpoint early: the master LSN stays in segment 0, and the seal
	// boundary (the horizon) runs well past it.
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		tx, _ := e.Begin()
		if _, err := e.HeapInsert(tx, store, bytes.Repeat([]byte{byte(i)}, 200)); err != nil {
			t.Fatal(err)
		}
		if err := e.Commit(tx); err != nil {
			t.Fatal(err)
		}
		if _, last := logStore.Segments(); last >= 3 {
			break
		}
	}
	e.CrashHard()

	master, err := logStore.Master()
	if err != nil {
		t.Fatal(err)
	}
	if int64(master) >= wal.MinSegmentBytes {
		t.Fatalf("master %v escaped segment 0; test setup broken", master)
	}
	if int64(logStore.Horizon()) < 2*wal.MinSegmentBytes {
		t.Fatalf("horizon %v too low; no sealed territory above master", logStore.Horizon())
	}
	// Flip a durable byte in sealed segment 1 — above the master (so the
	// tail check walks over it) but below the horizon.
	off := int64(wal.MinSegmentBytes) + 777
	var b [1]byte
	if _, err := logStore.ReadAt(b[:], off); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if err := logStore.WriteAt([]byte{b[0] ^ 0xFF}, off); err != nil {
		t.Fatal(err)
	}

	if _, err := openOver(t, vol, logStore, wal.DesignConsolidated, 0); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("startup over corrupt sealed segment = %v, want wal.ErrCorrupt", err)
	}
}
