package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/tx"
	"repro/internal/wal"
)

// newPipelineEngine builds a StagePipeline engine over a fault-injecting
// volume so tests can prove no page I/O leaks pre-committed state.
func newPipelineEngine(t *testing.T) (*Engine, *disk.FaultVolume, *wal.MemStore) {
	t.Helper()
	return newPipelineEngineDesign(t, StageConfig(StagePipeline).LogDesign)
}

// newPipelineEngineDesign is newPipelineEngine with an explicit log
// design. The crash-window tests use DesignCoupled: it has no background
// flusher, so the flush daemon is the only thing that can harden a
// commit and the pre-commit→harden window stays open deterministically.
// (With the decoupled/consolidated designs their internal flush daemon
// may drain the buffer at any moment — harmless for correctness, fatal
// for a test that needs the window to stay open.)
func newPipelineEngineDesign(t *testing.T, design wal.Design) (*Engine, *disk.FaultVolume, *wal.MemStore) {
	t.Helper()
	vol := disk.NewFault(disk.NewMem(0))
	logStore := wal.NewMemStore()
	cfg := StageConfig(StagePipeline)
	cfg.Frames = 256
	cfg.LogDesign = design
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, vol, logStore
}

// reopenPipeline opens a fresh StagePipeline engine over the same (crashed)
// stores, running restart recovery.
func reopenPipeline(t *testing.T, vol disk.Volume, logStore wal.Store) *Engine {
	t.Helper()
	cfg := StageConfig(StagePipeline)
	cfg.Frames = 256
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// seedRow commits one row and returns its location.
func seedRow(t *testing.T, e *Engine, val string) (uint32, page.RID) {
	t.Helper()
	store := createTable(t, e)
	t0, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	rid, err := e.HeapInsert(t0, store, []byte(val))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(t0); err != nil {
		t.Fatal(err)
	}
	return store, rid
}

func readCommitted(t *testing.T, e *Engine, store uint32, rid page.RID) string {
	t.Helper()
	tr, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.HeapRead(tr, store, rid)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(tr); err != nil {
		t.Fatal(err)
	}
	return string(got)
}

// TestPipelineCrashBetweenPrecommitAndHarden is the pipeline's central
// recovery obligation: a transaction that released its locks at
// pre-commit but whose commit record never reached the disk must be
// rolled back by restart recovery, never exposed as committed.
func TestPipelineCrashBetweenPrecommitAndHarden(t *testing.T) {
	e, vol, logStore := newPipelineEngineDesign(t, wal.DesignCoupled)
	store, rid := seedRow(t, e, "before")

	t1, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.HeapUpdate(t1, store, rid, []byte("after")); err != nil {
		t.Fatal(err)
	}
	// Freeze the window: any page write between pre-commit and the crash
	// would be a WAL violation (it would have to force the log first), so
	// fail all of them.
	vol.FailWritesAfter(0)
	target, err := e.PreCommit(t1)
	if err != nil {
		t.Fatal(err)
	}
	if t1.State() != tx.StateCommitting {
		t.Fatalf("state after pre-commit: %v", t1.State())
	}
	if d := e.Log().DurableLSN(); d >= target {
		t.Fatalf("commit already durable (%v >= %v); the crash window is gone", d, target)
	}

	e.CrashHard() // nothing flushed: the commit record dies with the buffer
	vol.HealWrites()

	e2 := reopenPipeline(t, vol, logStore)
	if got := readCommitted(t, e2, store, rid); got != "before" {
		t.Fatalf("pre-committed but unhardened tx survived the crash: %q", got)
	}
	if n := e2.txns.ActiveCount(); n != 0 {
		t.Fatalf("active transactions after recovery: %d", n)
	}
}

// TestPipelineELRReaderSeesUnhardenedWrite pins down what Early Lock
// Release exposes and what it does not: a reader can acquire the
// releaser's locks and see its writes before they are durable, but if the
// system crashes before hardening, recovery rolls everything back — the
// read value was never acknowledged as committed to anyone.
func TestPipelineELRReaderSeesUnhardenedWrite(t *testing.T) {
	e, vol, logStore := newPipelineEngineDesign(t, wal.DesignCoupled)
	store, rid := seedRow(t, e, "before")

	t1, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.HeapUpdate(t1, store, rid, []byte("after")); err != nil {
		t.Fatal(err)
	}
	target, err := e.PreCommit(t1)
	if err != nil {
		t.Fatal(err)
	}

	// ELR: the X lock is gone, so a reader gets in without waiting …
	t2, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.HeapRead(t2, store, rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "after" {
		t.Fatalf("ELR reader saw %q, want the pre-committed value", got)
	}
	// … and inherits the releaser's durability horizon.
	if h := t2.ELRHorizon(); h < target {
		t.Fatalf("reader horizon %v < releaser target %v", h, target)
	}

	e.CrashHard()

	e2 := reopenPipeline(t, vol, logStore)
	if got := readCommitted(t, e2, store, rid); got != "before" {
		t.Fatalf("phantom-durable data after crash: %q", got)
	}
}

// TestPipelineELRReaderCommitHardensReleaser: when the reader's own
// commit hardens, the log's prefix ordering guarantees the releaser's
// commit hardened too — the dependency can never invert.
func TestPipelineELRReaderCommitHardensReleaser(t *testing.T) {
	e, vol, logStore := newPipelineEngine(t)
	store, rid := seedRow(t, e, "before")

	t1, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.HeapUpdate(t1, store, rid, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.PreCommit(t1); err != nil {
		t.Fatal(err)
	}

	t2, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.HeapRead(t2, store, rid); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(t2); err != nil { // durable on return
		t.Fatal(err)
	}

	e.CrashHard()

	e2 := reopenPipeline(t, vol, logStore)
	if got := readCommitted(t, e2, store, rid); got != "after" {
		t.Fatalf("reader acknowledged but releaser lost: %q", got)
	}
}

// TestPipelineBlockingCommitDurableOnReturn: the staged pipeline must not
// weaken Commit's contract.
func TestPipelineBlockingCommitDurableOnReturn(t *testing.T) {
	e, vol, logStore := newPipelineEngine(t)
	store, rid := seedRow(t, e, "v0")

	t1, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.HeapUpdate(t1, store, rid, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if t1.State() != tx.StateCommitted {
		t.Fatalf("state after commit: %v", t1.State())
	}

	e.CrashHard() // pull the plug the instant Commit returned

	e2 := reopenPipeline(t, vol, logStore)
	if got := readCommitted(t, e2, store, rid); got != "v1" {
		t.Fatalf("blocking commit not durable on return: %q", got)
	}
}

// TestPipelineCommitAsync: the channel fires once the commit LSN is
// durable, and the result survives a hard crash.
func TestPipelineCommitAsync(t *testing.T) {
	e, vol, logStore := newPipelineEngine(t)
	store, rid := seedRow(t, e, "v0")

	t1, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.HeapUpdate(t1, store, rid, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := <-e.CommitAsync(t1); err != nil {
		t.Fatal(err)
	}
	if t1.State() != tx.StateCommitted {
		t.Fatalf("state after async commit resolved: %v", t1.State())
	}
	if d, c := e.Log().DurableLSN(), t1.CommitLSN(); d <= c {
		t.Fatalf("async commit resolved before durable: durable %v, commit %v", d, c)
	}

	e.CrashHard()
	e2 := reopenPipeline(t, vol, logStore)
	if got := readCommitted(t, e2, store, rid); got != "v1" {
		t.Fatalf("async-committed value lost: %q", got)
	}
}

// TestPipelineAbortAfterPreCommitRejected: once pre-committed, a
// transaction cannot roll back voluntarily.
func TestPipelineAbortAfterPreCommitRejected(t *testing.T) {
	e, _, _ := newPipelineEngine(t)
	store, rid := seedRow(t, e, "v0")

	t1, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.HeapUpdate(t1, store, rid, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	target, err := e.PreCommit(t1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Abort(t1); !errors.Is(err, ErrCommitting) {
		t.Fatalf("abort after pre-commit: %v", err)
	}
	if _, err := e.PreCommit(t1); !errors.Is(err, ErrCommitting) {
		t.Fatalf("double pre-commit: %v", err)
	}
	// The commit can still harden normally.
	if err := e.awaitHarden(context.Background(), t1, target); err != nil {
		t.Fatal(err)
	}
	if t1.State() != tx.StateCommitted {
		t.Fatalf("state: %v", t1.State())
	}
}

// TestPipelineCheckpointDuringCommitting: a checkpoint taken while a
// transaction sits between pre-commit and harden must not list it as
// active (the checkpoint's own flush hardens its commit record), so
// recovery treats it as a winner.
func TestPipelineCheckpointDuringCommitting(t *testing.T) {
	e, vol, logStore := newPipelineEngine(t)
	store, rid := seedRow(t, e, "before")

	t1, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.HeapUpdate(t1, store, rid, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.PreCommit(t1); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	e.CrashHard()

	e2 := reopenPipeline(t, vol, logStore)
	if got := readCommitted(t, e2, store, rid); got != "after" {
		t.Fatalf("checkpoint rolled back a pre-committed winner: %q", got)
	}
}

// TestPipelineConcurrentCommitsRecover hammers the pipeline with parallel
// writers, crashes, and verifies every acknowledged commit survived.
func TestPipelineConcurrentCommitsRecover(t *testing.T) {
	e, vol, logStore := newPipelineEngine(t)
	store := createTable(t, e)

	const writers = 8
	const perWriter = 25
	var wg sync.WaitGroup
	var mu sync.Mutex
	acked := make(map[string]bool)
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				val := fmt.Sprintf("w%d-%d", w, i)
				tw, err := e.Begin()
				if err != nil {
					errs <- err
					return
				}
				if _, err := e.HeapInsert(tw, store, []byte(val)); err != nil {
					errs <- err
					return
				}
				if err := e.Commit(tw); err != nil {
					errs <- err
					return
				}
				mu.Lock()
				acked[val] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	e.CrashHard()

	e2 := reopenPipeline(t, vol, logStore)
	tr, err := e2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	found := make(map[string]bool)
	if err := e2.HeapScan(tr, store, func(_ page.RID, rec []byte) bool {
		found[string(rec)] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if err := e2.Commit(tr); err != nil {
		t.Fatal(err)
	}
	for val := range acked {
		if !found[val] {
			t.Fatalf("acknowledged commit %q lost after crash (found %d/%d)", val, len(found), len(acked))
		}
	}
}
