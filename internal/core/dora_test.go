package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/dora"
	"repro/internal/lock"
	"repro/internal/tx"
	"repro/internal/wal"
)

// TestDoraBypassesLockManager pins the tentpole invariant: work running
// through the partition executor acquires only thread-local locks —
// the shared lock manager's counters stay flat while Dora.LocalAcquires
// climbs.
func TestDoraBypassesLockManager(t *testing.T) {
	cfg := StageConfig(StageFinal)
	cfg.DORA = true
	cfg.DoraPartitions = 1
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	x := e.Dora()
	if x == nil {
		t.Fatal("engine has no DORA executor")
	}

	// Build the index through a regular (locking) transaction.
	setup, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := e.CreateIndex(setup)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(setup); err != nil {
		t.Fatal(err)
	}

	before := e.Locks().Stats().Acquires
	const n = 50
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		txn := x.NewTxn(context.Background())
		txn.Add(dora.ActionSpec{
			Partition: 0,
			Locks:     []dora.LockReq{{Key: uint64(i), Mode: lock.X}},
			Run: func(ctx context.Context, sub *tx.Tx, _ uint64) error {
				return e.IndexInsertCtx(ctx, sub, ix, key, []byte("v"))
			},
		})
		if err := x.Submit(txn); err != nil {
			t.Fatal(err)
		}
	}

	after := e.Locks().Stats().Acquires
	if after != before {
		t.Errorf("shared lock manager acquires moved %d -> %d during DORA-only work", before, after)
	}
	st := e.Stats()
	if st.Dora.LocalAcquires == 0 {
		t.Error("Dora.LocalAcquires = 0, want > 0")
	}
	if st.Dora.LocalTx != n {
		t.Errorf("Dora.LocalTx = %d, want %d", st.Dora.LocalTx, n)
	}

	// The sub-transactions are ordinary logged transactions: everything
	// they wrote must be there via the normal read path.
	check, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		_, ok, err := e.IndexLookup(check, ix, key)
		if err != nil || !ok {
			t.Fatalf("lookup %s: ok=%v err=%v", key, ok, err)
		}
	}
	if err := e.Commit(check); err != nil {
		t.Fatal(err)
	}
}

// TestDoraDurability crashes the engine after DORA commits and checks
// restart recovery replays them: partition-local locking changes the
// concurrency control, not the ARIES contract.
func TestDoraDurability(t *testing.T) {
	cfg := StageConfig(StageFinal)
	cfg.DORA = true
	cfg.DoraPartitions = 1
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}

	setup, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := e.CreateIndex(setup)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(setup); err != nil {
		t.Fatal(err)
	}
	store := ix.Store()

	x := e.Dora()
	txn := x.NewTxn(context.Background())
	txn.Add(dora.ActionSpec{
		Partition: 0,
		Locks:     []dora.LockReq{{Key: 1, Mode: lock.X}},
		Run: func(ctx context.Context, sub *tx.Tx, _ uint64) error {
			return e.IndexInsertCtx(ctx, sub, ix, []byte("durable"), []byte("yes"))
		},
	})
	if err := x.Submit(txn); err != nil {
		t.Fatal(err)
	}
	e.Crash()

	e2, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	ix2, err := e2.OpenIndex(store)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := e2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := e2.IndexLookup(rd, ix2, []byte("durable"))
	if err != nil || !ok || string(v) != "yes" {
		t.Fatalf("after crash: v=%q ok=%v err=%v", v, ok, err)
	}
	if err := e2.Commit(rd); err != nil {
		t.Fatal(err)
	}
}
