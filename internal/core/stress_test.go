package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/wal"
)

// TestRecoveryStressRandomCrashPoints runs a randomized workload, crashes
// at a pseudo-random durability point, recovers, and checks that exactly
// the committed prefix survives — repeated across seeds. This is the
// repository's strongest end-to-end ARIES check: analysis, redo (heap and
// B-tree, including splits), logical and physical undo, and directory
// rebuild all execute on every iteration.
func TestRecoveryStressRandomCrashPoints(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			vol := disk.NewMem(0)
			logStore := wal.NewMemStore()
			cfg := StageConfig(StageFinal)
			cfg.Frames = 64 // tiny pool: forces evictions + write-backs mid-run
			e, err := Open(vol, logStore, cfg)
			if err != nil {
				t.Fatal(err)
			}

			store := createTable(t, e)
			tx0, _ := e.Begin()
			ix, err := e.CreateIndex(tx0)
			if err != nil {
				t.Fatal(err)
			}
			ixStore := ix.Store()
			if err := e.Commit(tx0); err != nil {
				t.Fatal(err)
			}

			// committed mirrors everything whose commit returned.
			committed := map[string]string{}
			committedRIDs := map[string]page.RID{}

			nTx := 10 + rng.Intn(15)
			for i := 0; i < nTx; i++ {
				txi, err := e.Begin()
				if err != nil {
					t.Fatal(err)
				}
				local := map[string]string{}
				localRID := map[string]page.RID{}
				ops := 1 + rng.Intn(30)
				for j := 0; j < ops; j++ {
					key := fmt.Sprintf("k%02d-%03d", i, j)
					val := fmt.Sprintf("v%d-%d-%d", seed, i, j)
					if err := e.IndexInsert(txi, ix, []byte(key), []byte(val)); err != nil {
						t.Fatal(err)
					}
					rid, err := e.HeapInsert(txi, store, []byte(val))
					if err != nil {
						t.Fatal(err)
					}
					local[key] = val
					localRID[key] = rid
				}
				switch rng.Intn(4) {
				case 0: // abort: nothing becomes visible
					if err := e.Abort(txi); err != nil {
						t.Fatal(err)
					}
				default: // commit
					if err := e.Commit(txi); err != nil {
						t.Fatal(err)
					}
					for k, v := range local {
						committed[k] = v
						committedRIDs[k] = localRID[k]
					}
				}
				if rng.Intn(5) == 0 {
					if rng.Intn(2) == 0 {
						e.Pool().CleanerSweep()
					}
					if err := e.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			// One in-flight loser at crash time, flushed so undo must run.
			loser, _ := e.Begin()
			if err := e.IndexInsert(loser, ix, []byte("zz-loser"), []byte("x")); err != nil {
				t.Fatal(err)
			}
			if err := e.Log().Flush(e.Log().CurLSN()); err != nil {
				t.Fatal(err)
			}
			e.CrashHard()

			e2, err := Open(vol, logStore, cfg)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer e2.Close()
			ix2, err := e2.OpenIndex(ixStore)
			if err != nil {
				t.Fatal(err)
			}
			txv, _ := e2.Begin()
			for k, v := range committed {
				got, ok, err := e2.IndexLookup(txv, ix2, []byte(k))
				if err != nil || !ok || string(got) != v {
					t.Fatalf("committed key %s: got %q,%v,%v want %q", k, got, ok, err, v)
				}
				rec, err := e2.HeapRead(txv, store, committedRIDs[k])
				if err != nil || string(rec) != v {
					t.Fatalf("committed heap row %s: %q, %v", k, rec, err)
				}
			}
			if _, ok, _ := e2.IndexLookup(txv, ix2, []byte("zz-loser")); ok {
				t.Fatal("loser key survived recovery")
			}
			// Every index key must be a committed one.
			count := 0
			if err := e2.IndexScan(txv, ix2, nil, nil, func(k, v []byte) bool {
				if committed[string(k)] != string(v) {
					t.Errorf("uncommitted key %q=%q visible after recovery", k, v)
					return false
				}
				count++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if count != len(committed) {
				t.Fatalf("index has %d keys, want %d", count, len(committed))
			}
			// Structural integrity of the recovered tree (ordering, high
			// keys, levels, leaf chain).
			vcount, err := ix2.Verify()
			if err != nil {
				t.Fatalf("recovered tree corrupt: %v", err)
			}
			if vcount != len(committed) {
				t.Fatalf("Verify counted %d keys, want %d", vcount, len(committed))
			}
			if err := e2.Commit(txv); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDiskWriteFaultSurfaces verifies that injected volume failures
// surface as errors instead of being swallowed, and that healing the
// volume lets the engine continue.
func TestDiskWriteFaultSurfaces(t *testing.T) {
	base := disk.NewMem(0)
	vol := disk.NewFault(base)
	logStore := wal.NewMemStore()
	cfg := StageConfig(StageFinal)
	cfg.Frames = 8 // tiny: evictions happen quickly
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	store := createTable(t, e)

	// Fill enough pages (2 KiB records, ~4/page, 50 pages > 8 frames) that
	// evictions must write back, then arm faults.
	big := make([]byte, 2048)
	tx1, _ := e.Begin()
	for i := 0; i < 200; i++ {
		if _, err := e.HeapInsert(tx1, store, big); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Commit(tx1); err != nil {
		t.Fatal(err)
	}
	vol.FailWritesAfter(0)
	// Continue inserting: eventually an eviction write-back must fail and
	// the error must surface through the public operation.
	tx2, _ := e.Begin()
	var opErr error
	for i := 0; i < 500 && opErr == nil; i++ {
		_, opErr = e.HeapInsert(tx2, store, big)
	}
	if opErr == nil {
		t.Fatal("no error surfaced despite failing volume writes")
	}
	if !errors.Is(opErr, disk.ErrInjected) {
		t.Fatalf("surfaced error = %v, want injected fault", opErr)
	}
	_ = e.Abort(tx2)

	// Heal: the engine keeps working.
	vol.HealWrites()
	tx3, _ := e.Begin()
	if _, err := e.HeapInsert(tx3, store, []byte("recovered")); err != nil {
		t.Fatalf("insert after heal: %v", err)
	}
	if err := e.Commit(tx3); err != nil {
		t.Fatal(err)
	}
}

// TestReadFaultSurfaces injects a read failure for one page and verifies
// the miss path reports it.
func TestReadFaultSurfaces(t *testing.T) {
	base := disk.NewMem(0)
	vol := disk.NewFault(base)
	logStore := wal.NewMemStore()
	cfg := StageConfig(StageFinal)
	cfg.Frames = 4
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	store := createTable(t, e)
	tx1, _ := e.Begin()
	rid, err := e.HeapInsert(tx1, store, []byte("target"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(tx1); err != nil {
		t.Fatal(err)
	}
	// Persist everything, then evict the page cleanly so the next access
	// must hit the (faulty) disk.
	e.Pool().CleanerSweep()
	e.Pool().Drop(rid.Page)
	vol.FailReadsOf(rid.Page)
	tx2, _ := e.Begin()
	if _, err := e.HeapRead(tx2, store, rid); !errors.Is(err, disk.ErrInjected) {
		t.Fatalf("read fault not surfaced: %v", err)
	}
	vol.HealReads()
	if got, err := e.HeapRead(tx2, store, rid); err != nil || string(got) != "target" {
		t.Fatalf("after heal: %q, %v", got, err)
	}
	if err := e.Commit(tx2); err != nil {
		t.Fatal(err)
	}
}
