package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/pageop"
	"repro/internal/space"
	"repro/internal/sync2"
	"repro/internal/tx"
)

// Heap-table operations: the record-insert microbenchmark path, exercising
// the free-space manager (page targeting, the §6.2.2 membership check),
// buffer pool, log manager and lock manager together.

// ErrNoRecord is returned when a RID does not name a live record.
var ErrNoRecord = errors.New("core: no such record")

// MaxRecord bounds heap record size.
const MaxRecord = page.MaxRecordSize / 2

// CreateTable registers a new heap store inside transaction t, mirroring
// CreateIndex's shape. Like index creation, store registration itself is
// NOT transactional: the store id is allocated immediately and is not
// reclaimed if t aborts — table durability is derived from the page
// headers of the first committed insert, so an aborted creation leaves
// only an unused id behind.
func (e *Engine) CreateTable(t *tx.Tx) (uint32, error) {
	if e.closed.Load() {
		return 0, ErrClosed
	}
	if t == nil || t.State() != tx.StateActive {
		return 0, fmt.Errorf("core: CreateTable requires an active transaction")
	}
	if err := snapshotGuard(t); err != nil {
		return 0, err
	}
	return e.sm.CreateStore(space.KindHeap), nil
}

// freeSlot returns the slot an insert into f's page would use: the first
// tombstone at or above the frame's free-slot hint, or the next directory
// position. The hint makes slot choice O(1) amortized instead of a full
// O(slots) tombstone scan per insert: inserts advance it past the slot
// they claim, deletes lower it, and the pool resets it when the frame
// changes pages. It is only ever a scan start — every returned slot is
// verified free right here — so a stale hint costs reuse, not
// correctness (recovery and rollback tombstone slots without updating
// it).
func freeSlot(f *buffer.Frame) uint16 {
	p := f.Page()
	n := p.NumSlots()
	start := int(f.SlotHint())
	if start > n {
		start = n
	}
	for i := start; i < n; i++ {
		if _, err := p.Record(i); err != nil {
			return uint16(i)
		}
	}
	return uint16(n)
}

// allocHeapPage allocates and formats a fresh heap page for store. With
// Space.LatchInCS the page fix happens inside the allocation critical
// section (the Figure 6 pathology); otherwise after it. The returned frame
// is EX-latched and pinned.
func (e *Engine) allocHeapPage(t *tx.Tx, store uint32) (*buffer.Frame, page.ID, error) {
	var f *buffer.Frame
	pid, err := e.sm.AllocPage(store, func(p page.ID) error {
		var ferr error
		f, ferr = e.pool.FixNew(p)
		return ferr
	})
	if err != nil {
		return nil, 0, err
	}
	op := pageop.Op{Kind: pageop.KindFormat, PType: page.TypeHeap, Store: store}
	if err := e.logPhysical(t.ID(), t, f, op, nil, true); err != nil {
		e.pool.Unfix(f, sync2.LatchEX)
		return nil, 0, err
	}
	e.sm.SetLastPage(store, pid)
	return f, pid, nil
}

// HeapInsert appends data to the table, returning its RID. Locking
// protocol: IX on database and store, X on the new row (acquired
// conditionally under the page latch; on conflict the latch is released
// and the lock awaited before retrying).
func (e *Engine) HeapInsert(t *tx.Tx, store uint32, data []byte) (page.RID, error) {
	return e.HeapInsertCtx(context.Background(), t, store, data)
}

// HeapInsertCtx is HeapInsert whose lock waits observe ctx.
func (e *Engine) HeapInsertCtx(ctx context.Context, t *tx.Tx, store uint32, data []byte) (page.RID, error) {
	if e.closed.Load() {
		return page.RID{}, ErrClosed
	}
	if err := snapshotGuard(t); err != nil {
		return page.RID{}, err
	}
	if len(data) == 0 || len(data) > MaxRecord {
		return page.RID{}, fmt.Errorf("core: record size %d out of range", len(data))
	}
	if err := e.acquire(ctx, t, lock.DatabaseName(), lock.IX); err != nil {
		return page.RID{}, err
	}
	if err := e.acquire(ctx, t, lock.StoreName(store), lock.IX); err != nil {
		return page.RID{}, err
	}
	_, escalated := t.Escalated(store)

	for attempt := 0; attempt < 1000; attempt++ {
		pid, err := e.sm.LastPage(store)
		if err != nil {
			return page.RID{}, err
		}
		var f *buffer.Frame
		if pid == 0 {
			f, pid, err = e.allocHeapPage(t, store)
			if err != nil {
				return page.RID{}, err
			}
		} else {
			// §6.2.2: verify the target page belongs to this table, via the
			// per-transaction extent cache when enabled.
			if err := e.sm.CheckPage(store, pid, &t.ExtentCache); err != nil {
				return page.RID{}, err
			}
			f, err = e.fix(pid, sync2.LatchEX)
			if err != nil {
				return page.RID{}, err
			}
			if f.Page().Type() != page.TypeHeap {
				// The last-page hint can race a concurrent allocation: the
				// page is claimed in the extent bitmap but its formatting
				// happens under the allocator's EX latch, which we may beat
				// to the fix. Never write to the raw image — retry; the
				// allocator formats it (or our own retry allocates anew).
				e.pool.Unfix(f, sync2.LatchEX)
				continue
			}
			if !f.Page().CanFit(len(data)) {
				e.pool.Unfix(f, sync2.LatchEX)
				f, pid, err = e.allocHeapPage(t, store)
				if err != nil {
					return page.RID{}, err
				}
			}
		}
		slot := freeSlot(f)
		rid := page.RID{Page: pid, Slot: slot}
		if !escalated {
			// Conditional row lock under the latch; never wait here.
			name := lock.RowName(store, rid)
			if err := e.locks.TryLockNoWait(t.ID(), name, lock.X); err != nil {
				e.pool.Unfix(f, sync2.LatchEX)
				if errors.Is(err, lock.ErrWouldBlock) {
					// Wait without the latch, keep the lock (2PL), retry the
					// slot choice from scratch.
					if err := e.acquire(ctx, t, name, lock.X); err != nil {
						return page.RID{}, err
					}
					continue
				}
				return page.RID{}, err
			}
			t.AddLock(name, lock.X)
			if e.cfg.EscalateAfter > 0 && t.CountRowLock(store) > e.cfg.EscalateAfter {
				// Escalate to a store-level X lock. Conditional only: we
				// hold the page latch, so we must never block here.
				name := lock.StoreName(store)
				if err := e.locks.TryLockNoWait(t.ID(), name, lock.X); err == nil {
					t.AddLock(name, lock.X)
					t.MarkEscalated(store, lock.X)
					escalated = true
				}
			}
		}
		op := pageop.Op{Kind: pageop.KindHeapInsert, Slot: slot, Data: data}
		err = e.logPhysical(t.ID(), t, f, op, nil, false)
		if err == nil {
			f.SetSlotHint(slot + 1) // every slot below is now occupied
		}
		e.pool.Unfix(f, sync2.LatchEX)
		if err != nil {
			return page.RID{}, err
		}
		e.sm.SetLastPage(store, pid)
		return rid, nil
	}
	return page.RID{}, fmt.Errorf("core: HeapInsert: could not claim a slot after many retries")
}

// HeapRead returns a copy of the record at rid under an S row lock.
func (e *Engine) HeapRead(t *tx.Tx, store uint32, rid page.RID) ([]byte, error) {
	return e.HeapReadCtx(context.Background(), t, store, rid)
}

// HeapReadCtx is HeapRead whose lock waits observe ctx.
func (e *Engine) HeapReadCtx(ctx context.Context, t *tx.Tx, store uint32, rid page.RID) ([]byte, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if t != nil && t.IsSnapshot() {
		return e.heapReadSnapshot(t, store, rid)
	}
	if err := e.lockRow(ctx, t, store, rid, lock.S); err != nil {
		return nil, err
	}
	f, err := e.fix(rid.Page, sync2.LatchSH)
	if err != nil {
		return nil, err
	}
	defer e.pool.Unfix(f, sync2.LatchSH)
	rec, err := f.Page().Record(int(rid.Slot))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoRecord, rid)
	}
	return append([]byte(nil), rec...), nil
}

// HeapUpdate replaces the record at rid under an X row lock.
func (e *Engine) HeapUpdate(t *tx.Tx, store uint32, rid page.RID, data []byte) error {
	return e.HeapUpdateCtx(context.Background(), t, store, rid, data)
}

// HeapUpdateCtx is HeapUpdate whose lock waits observe ctx.
func (e *Engine) HeapUpdateCtx(ctx context.Context, t *tx.Tx, store uint32, rid page.RID, data []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if err := snapshotGuard(t); err != nil {
		return err
	}
	if len(data) == 0 || len(data) > MaxRecord {
		return fmt.Errorf("core: record size %d out of range", len(data))
	}
	if err := e.lockRow(ctx, t, store, rid, lock.X); err != nil {
		return err
	}
	f, err := e.fix(rid.Page, sync2.LatchEX)
	if err != nil {
		return err
	}
	defer e.pool.Unfix(f, sync2.LatchEX)
	old, err := f.Page().Record(int(rid.Slot))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNoRecord, rid)
	}
	oldCopy := append([]byte(nil), old...)
	op := pageop.Op{Kind: pageop.KindUpdateAt, Slot: rid.Slot, Data: data, Old: oldCopy}
	return e.logPhysical(t.ID(), t, f, op, nil, false)
}

// HeapDelete removes the record at rid under an X row lock. The slot is
// tombstoned; its RID may be reused after the transaction commits.
func (e *Engine) HeapDelete(t *tx.Tx, store uint32, rid page.RID) error {
	return e.HeapDeleteCtx(context.Background(), t, store, rid)
}

// HeapDeleteCtx is HeapDelete whose lock waits observe ctx.
func (e *Engine) HeapDeleteCtx(ctx context.Context, t *tx.Tx, store uint32, rid page.RID) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if err := snapshotGuard(t); err != nil {
		return err
	}
	if err := e.lockRow(ctx, t, store, rid, lock.X); err != nil {
		return err
	}
	f, err := e.fix(rid.Page, sync2.LatchEX)
	if err != nil {
		return err
	}
	defer e.pool.Unfix(f, sync2.LatchEX)
	old, err := f.Page().Record(int(rid.Slot))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNoRecord, rid)
	}
	oldCopy := append([]byte(nil), old...)
	op := pageop.Op{Kind: pageop.KindHeapDelete, Slot: rid.Slot, Old: oldCopy}
	if err := e.logPhysical(t.ID(), t, f, op, nil, false); err != nil {
		return err
	}
	f.LowerSlotHint(rid.Slot) // the tombstoned slot is reusable again
	return nil
}

// HeapScan iterates every record of the table in RID order under a
// store-level S lock, calling fn with the rid and a copy of each record.
// fn returning false stops the scan.
func (e *Engine) HeapScan(t *tx.Tx, store uint32, fn func(rid page.RID, rec []byte) bool) error {
	return e.HeapScanCtx(context.Background(), t, store, fn)
}

// HeapScanCtx is HeapScan whose lock waits observe ctx.
func (e *Engine) HeapScanCtx(ctx context.Context, t *tx.Tx, store uint32, fn func(rid page.RID, rec []byte) bool) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if t != nil && t.IsSnapshot() {
		return e.heapScanSnapshot(t, store, fn)
	}
	if err := e.acquire(ctx, t, lock.DatabaseName(), lock.IS); err != nil {
		return err
	}
	if err := e.acquire(ctx, t, lock.StoreName(store), lock.S); err != nil {
		return err
	}
	pids, err := e.sm.Pages(store)
	if err != nil {
		return err
	}
	type item struct {
		rid page.RID
		rec []byte
	}
	for _, pid := range pids {
		f, err := e.fix(pid, sync2.LatchSH)
		if err != nil {
			return err
		}
		p := f.Page()
		if p.Type() != page.TypeHeap {
			e.pool.Unfix(f, sync2.LatchSH)
			continue
		}
		var batch []item
		for i := 0; i < p.NumSlots(); i++ {
			rec, err := p.Record(i)
			if err != nil {
				continue // tombstone
			}
			batch = append(batch, item{
				rid: page.RID{Page: pid, Slot: uint16(i)},
				rec: append([]byte(nil), rec...),
			})
		}
		e.pool.Unfix(f, sync2.LatchSH)
		for _, it := range batch {
			if !fn(it.rid, it.rec) {
				return nil
			}
		}
	}
	return nil
}
