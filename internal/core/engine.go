package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/disk"
	"repro/internal/dora"
	"repro/internal/lock"
	"repro/internal/mvcc"
	"repro/internal/page"
	"repro/internal/pageop"
	"repro/internal/plp"
	"repro/internal/space"
	"repro/internal/sync2"
	"repro/internal/tx"
	"repro/internal/wal"
)

// Errors returned by the engine.
var (
	ErrClosed  = errors.New("core: engine closed")
	ErrAborted = errors.New("core: transaction aborted")
	// ErrCommitting is returned when aborting (or re-committing) a
	// transaction that already entered the commit pipeline: its commit
	// record is in the log and its locks are gone, so the only legal
	// outcomes are hardening or crash-time rollback.
	ErrCommitting = errors.New("core: transaction is pre-committed")
)

// Engine is the storage manager: the paper's contribution, assembled from
// the substrate packages according to Config.
type Engine struct {
	cfg      Config
	vol      disk.Volume
	logStore wal.Store
	log      wal.Manager
	pool     *buffer.Pool
	locks    *lock.Manager
	txns     *tx.Manager
	sm       *space.Manager
	flushd   *wal.FlushDaemon // harden stage of the commit pipeline (nil unless CommitPipeline)
	dora     *dora.Executor   // partition executor (nil unless Config.DORA)
	mvcc     *mvcc.Store      // version store for snapshot reads (nil unless Config.Snapshot)

	// PLP state (Config.PLP): the current partition map, published
	// through an atomic pointer so the router and index dispatch read it
	// without locks; plpMu serializes map mutations (registration,
	// migration) with their catalog persistence; plpRID tracks the
	// catalog record. See plp.go.
	plpMap        atomic.Pointer[plp.Map]
	plpMu         sync.Mutex
	plpRID        page.RID
	plpStop       chan struct{}
	plpDone       chan struct{}
	plpMigrations atomic.Uint64

	// ckptMu orders commit-point publication against checkpoint snapshots:
	// committers hold it shared for the instant between inserting the
	// commit record and entering StateCommitting, Checkpoint holds it
	// exclusive for its whole body. Without it a checkpoint could snapshot
	// a transaction as active after its commit record landed below the
	// checkpoint's master LSN — and recovery would roll back a durably
	// committed transaction.
	ckptMu sync.RWMutex
	closed atomic.Bool

	// Agent pool for speculative lock inheritance: a committing
	// transaction's agent (with its parked intent locks) is handed to
	// whichever transaction begins next. LIFO reuse keeps a steady
	// worker set claiming its own locks back.
	agentMu sync.Mutex
	agents  []*lock.Agent

	// olc aggregates optimistic-descent outcomes across every tree this
	// engine opens (Config.OLC).
	olc btree.OLCStats

	// Auto-checkpoint daemon state (Config.CheckpointEvery): lastCkpt is
	// the begin LSN of the most recent checkpoint, manual or automatic.
	lastCkpt atomic.Uint64
	ckptStop chan struct{}
	ckptDone chan struct{}

	// recovery describes the restart recovery this engine ran at Open
	// (zero if the log was empty); archived counts log segments dropped
	// by checkpoint-time archiving over the engine's lifetime.
	recovery RecoveryStats
	archived atomic.Uint64
}

// Open builds an engine over vol and logStore per cfg, running ARIES
// restart recovery if the log is non-empty.
func Open(vol disk.Volume, logStore wal.Store, cfg Config) (*Engine, error) {
	cfg.normalize()
	e := &Engine{cfg: cfg, vol: vol, logStore: logStore}
	// Validate the log tail before any manager captures the store's size:
	// a torn tail above the durable horizon is clipped here, while damage
	// below it refuses startup with wal.ErrCorrupt.
	if logStore.Size() > 8 { // anything beyond the preamble
		end, torn, err := wal.CheckTail(logStore)
		if err != nil {
			return nil, fmt.Errorf("core: recovery: %w", err)
		}
		if torn > 0 {
			if err := logStore.Truncate(end); err != nil {
				return nil, fmt.Errorf("core: recovery: clipping torn tail: %w", err)
			}
			e.recovery.TornBytesClipped = torn
		}
	}
	e.log = wal.New(logStore, wal.Options{Design: cfg.LogDesign, BufferSize: cfg.LogBuffer})
	bopts := cfg.Buffer
	bopts.FlushLog = func(l wal.LSN) error { return e.log.Flush(l + 1) }
	bopts.CurLSN = func() wal.LSN { return e.log.CurLSN() }
	e.pool = buffer.New(vol, bopts)
	e.locks = lock.NewManager(cfg.Lock)
	e.txns = tx.NewManager(tx.Options{CachedOldest: cfg.CachedOldest})
	e.sm = space.NewManager(vol, cfg.Space)
	if cfg.Snapshot {
		e.mvcc = mvcc.NewStore()
	}

	if logStore.DurableSize() > 8 { // anything beyond the preamble
		if err := e.restart(); err != nil {
			return nil, fmt.Errorf("core: recovery: %w", err)
		}
	}
	if cfg.CleanerInterval > 0 {
		e.pool.StartCleaner(cfg.CleanerInterval)
	}
	if cfg.CommitPipeline {
		e.flushd = wal.NewFlushDaemon(e.log, wal.DaemonOptions{Interval: cfg.PipelineInterval})
	}
	if cfg.DORA {
		e.dora = dora.NewExecutor(doraEnv{e}, dora.Options{
			Partitions: cfg.DoraPartitions,
			Keys:       cfg.DoraKeys,
		})
	}
	if cfg.PLP {
		if err := e.plpInit(); err != nil {
			return nil, fmt.Errorf("core: plp: %w", err)
		}
	}
	if cfg.CheckpointEvery > 0 {
		e.lastCkpt.Store(uint64(e.log.CurLSN()))
		e.ckptStop = make(chan struct{})
		e.ckptDone = make(chan struct{})
		go e.checkpointLoop()
	}
	return e, nil
}

// checkpointLoop is the auto-checkpoint daemon: it polls the log's growth
// and takes a fuzzy checkpoint whenever CheckpointEvery bytes accumulated
// since the last one (manual Checkpoint calls reset the meter too).
// Polling beats hooking the insert path — the hot path stays free of
// checkpoint bookkeeping, and a checkpoint's cost dwarfs a few dozen
// milliseconds of trigger latency.
func (e *Engine) checkpointLoop() {
	defer close(e.ckptDone)
	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
	skip := 0 // ticks to sit out after a failure (exponential, capped)
	fails := 0
	for {
		select {
		case <-e.ckptStop:
			return
		case <-ticker.C:
			if skip > 0 {
				skip--
				continue
			}
			if int64(uint64(e.log.CurLSN())-e.lastCkpt.Load()) >= e.cfg.CheckpointEvery {
				// A failed checkpoint (engine closing, log store trouble)
				// leaves lastCkpt in place so the attempt is retried — but
				// with exponential backoff, because each attempt itself
				// appends log records and sweeps the pool; hammering a
				// persistently failing store at tick rate would grow the
				// very log this daemon exists to bound.
				if err := e.Checkpoint(); err != nil {
					fails++
					skip = 1 << min(fails, 9) // caps at ~12.8s between attempts
				} else {
					fails = 0
				}
			}
		}
	}
}

// stopCheckpointLoop stops the auto-checkpoint daemon, waiting for any
// in-flight checkpoint to finish.
func (e *Engine) stopCheckpointLoop() {
	if e.ckptStop == nil {
		return
	}
	close(e.ckptStop)
	<-e.ckptDone
	e.ckptStop = nil
}

// Config returns the engine's resolved configuration.
func (e *Engine) Config() Config { return e.cfg }

// Pool exposes the buffer pool (read-mostly: stats, sweeps).
func (e *Engine) Pool() *buffer.Pool { return e.pool }

// Log exposes the log manager.
func (e *Engine) Log() wal.Manager { return e.log }

// Locks exposes the lock manager.
func (e *Engine) Locks() *lock.Manager { return e.locks }

// Space exposes the free-space manager.
func (e *Engine) Space() *space.Manager { return e.sm }

// Close flushes and shuts the engine down cleanly. In-flight pipeline
// commits are hardened before the log closes.
func (e *Engine) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	e.stopCheckpointLoop()
	e.stopRebalancer() // before dora.Close: a migration barrier needs live owners
	if e.dora != nil {
		e.dora.Close() // partition owners drain their queues
	}
	if e.flushd != nil {
		_ = e.flushd.Close() // final flush of queued commit LSNs
	}
	if err := e.pool.Close(); err != nil {
		return err
	}
	return e.log.Close()
}

// ctxErr maps a cancelled context onto the lock package's ErrCanceled
// sentinel (the engine-wide cancellation currency), or nil.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", lock.ErrCanceled, context.Cause(ctx))
	}
	return nil
}

// Begin starts a transaction and logs its begin record.
func (e *Engine) Begin() (*tx.Tx, error) { return e.BeginCtx(context.Background()) }

// BeginCtx is Begin observing ctx: a transaction begun with it threads no
// state — cancellation is checked here and must be passed to each
// subsequent operation via its Ctx variant.
func (e *Engine) BeginCtx(ctx context.Context) (*tx.Tx, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	t := e.txns.Begin()
	if e.cfg.SLI {
		t.SetAgent(e.grabAgent())
	}
	lsn, err := e.log.Insert(&wal.Record{Type: wal.RecTxBegin, TxID: t.ID()})
	if err != nil {
		return nil, err
	}
	t.RecordLog(lsn)
	return t, nil
}

// Dora returns the partition executor (nil unless Config.DORA). Build
// transactions with its NewTxn/Submit; action bodies receive
// partition-local sub-transactions that never touch the lock manager.
func (e *Engine) Dora() *dora.Executor { return e.dora }

// doraEnv adapts the engine to dora.Env: partition-local sub-
// transactions are ordinary engine transactions marked NoLock — they
// log, latch, and roll back exactly like any other transaction, but
// every lock-manager trip is skipped because the owning partition's
// thread-local table already serialized conflicting actions.
type doraEnv struct{ e *Engine }

func (v doraEnv) Begin(ctx context.Context) (*tx.Tx, error) { return v.e.beginDora(ctx) }

func (v doraEnv) Commit(t *tx.Tx, readonly bool) error {
	if readonly {
		return v.e.CommitReadOnly(context.Background(), t)
	}
	return v.e.CommitCtx(context.Background(), t)
}

func (v doraEnv) Abort(t *tx.Tx) error { return v.e.Abort(t) }

// beginDora is BeginCtx for a partition-local sub-transaction: same
// begin record, but marked NoLock and never bound to an SLI agent (it
// will not acquire anything an agent could park).
func (e *Engine) beginDora(ctx context.Context) (*tx.Tx, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	t := e.txns.Begin()
	t.SetNoLock()
	lsn, err := e.log.Insert(&wal.Record{Type: wal.RecTxBegin, TxID: t.ID()})
	if err != nil {
		return nil, err
	}
	t.RecordLog(lsn)
	return t, nil
}

// grabAgent pops a pooled agent (with whatever intent locks its last
// transaction parked on it) or makes a fresh one.
func (e *Engine) grabAgent() *lock.Agent {
	e.agentMu.Lock()
	var a *lock.Agent
	if n := len(e.agents); n > 0 {
		a = e.agents[n-1]
		e.agents = e.agents[:n-1]
	}
	e.agentMu.Unlock()
	if a == nil {
		a = e.locks.NewAgent()
	}
	return a
}

// putAgent returns an agent to the pool at end-of-transaction.
func (e *Engine) putAgent(a *lock.Agent) {
	e.agentMu.Lock()
	e.agents = append(e.agents, a)
	e.agentMu.Unlock()
}

// Commit makes t durable. Without the commit pipeline this is the
// classic monolithic path: commit record, group-commit log flush while
// still holding every lock, then lock release. With CommitPipeline it is
// staged — pre-commit (commit record + early lock release), harden
// (batched flush by the daemon), notify — but keeps the exact same
// external contract: when Commit returns nil, the commit is durable.
func (e *Engine) Commit(t *tx.Tx) error { return e.CommitCtx(context.Background(), t) }

// CommitCtx is Commit whose durability wait observes ctx. Cancellation
// mid-wait returns lock.ErrCanceled-wrapped context error and leaves t in
// StateCommitting: the commit record is already in the log, so the
// transaction is in doubt — the caller may retry Commit (the record is
// not re-inserted; only the wait resumes) or walk away and let the
// background flush / restart recovery settle it. It can never abort.
func (e *Engine) CommitCtx(ctx context.Context, t *tx.Tx) error {
	if e.closed.Load() {
		return ErrClosed
	}
	// Fail fast on a dead context before the commit record exists: at
	// this point the transaction can still abort cleanly, whereas one
	// instruction later it is in doubt and will commit despite the
	// caller being told it was cancelled.
	if t.State() == tx.StateActive {
		if err := ctxErr(ctx); err != nil {
			return err
		}
	}
	if e.cfg.CommitPipeline {
		if t.State() == tx.StateCommitting {
			// Retrying after a failed harden: the commit record is
			// already in the log; just wait out its durability.
			return e.awaitHarden(ctx, t, t.HardenTarget())
		}
		target, err := e.PreCommit(t)
		if err != nil {
			return err
		}
		return e.awaitHarden(ctx, t, target)
	}
	switch t.State() {
	case tx.StateCommitting:
		// Retrying after a failed flush: the commit record is already in
		// the log. Once it exists the transaction is in doubt — it can
		// only harden (here) or be resolved by restart recovery; it can
		// never abort, because a background flusher may harden the commit
		// record at any moment.
		if err := e.flushCtx(ctx, t.HardenTarget()); err != nil {
			return err
		}
		e.releaseLocks(t)
		return e.txns.Commit(t)
	case tx.StateActive:
	default:
		return fmt.Errorf("%w: tx %d is %v", ErrCommitting, t.ID(), t.State())
	}
	if _, err := e.publishCommit(t); err != nil {
		return err
	}
	if err := e.flushCtx(ctx, t.HardenTarget()); err != nil {
		// In doubt: stays StateCommitting with locks held; the caller may
		// retry Commit (not Abort) or let restart recovery decide.
		return err
	}
	e.releaseLocks(t)
	return e.txns.Commit(t)
}

// publishCommit is the commit point shared by every commit flavor: it
// inserts t's commit record and enters StateCommitting atomically with
// respect to checkpoint snapshots (shared ckptMu; see its comment), and
// stamps the harden target — CurLSN as a group-commit-friendly cover of
// the record, raised to any observed ELR horizon so t's acknowledgment
// stays ordered behind every early releaser whose data it may have read
// (the horizon is zero outside the pipeline).
func (e *Engine) publishCommit(t *tx.Tx) (wal.LSN, error) {
	e.ckptMu.RLock()
	defer e.ckptMu.RUnlock()
	if st := t.Stamp(); st != nil && e.mvcc != nil {
		// Pending floor: between here and the stamp store below, this
		// commit is in the log but its versions are unstamped. New
		// snapshots are clamped below the floor so they see the commit as
		// a whole or not at all. The floor is exclusive (CurLSN+1, like a
		// snapshot LSN): earlier commits stamped at exactly CurLSN stay
		// visible, while this commit's stamp will land strictly above it.
		// The deferred EndPublish also covers the insert-failure path
		// (the stamp stays 0: still invisible).
		e.mvcc.BeginPublish(st, uint64(e.log.CurLSN())+1)
		defer e.mvcc.EndPublish(st)
	}
	lsn, err := e.log.Insert(&wal.Record{
		Type: wal.RecTxCommit, TxID: t.ID(), PrevLSN: t.LastLSN(),
	})
	if err != nil {
		return wal.NullLSN, err
	}
	t.RecordLog(lsn)
	t.SetCommitLSN(lsn)
	target := e.log.CurLSN()
	if h := t.ELRHorizon(); h > target {
		target = h
	}
	t.SetHardenTarget(target)
	if st := t.Stamp(); st != nil {
		// Stamp with the harden target, not the commit record's own LSN:
		// a snapshot S only admits stamps strictly below it, and S never
		// exceeds the durable horizon, so stamp < S proves the whole
		// commit record is on disk. Folding the ELR horizon keeps stamps
		// ordered behind every early releaser whose data t read.
		st.Commit(uint64(target))
	}
	if err := e.txns.BeginCommit(t); err != nil {
		return wal.NullLSN, err
	}
	return target, nil
}

// CommitReadOnly ends a transaction the caller guarantees performed no
// updates: commit record, lock release — and no durability wait of its
// own, because there is nothing whose loss a crash could expose (losing
// the commit record of a read-only transaction merely makes recovery
// treat it as a loser with an empty undo chain). The one exception is an
// inherited Early-Lock-Release horizon: a reader that observed writes of
// a not-yet-hardened committer must not acknowledge before that horizon
// is durable, or a crash could un-commit data the reader already
// reported. The public View API rides on this.
func (e *Engine) CommitReadOnly(ctx context.Context, t *tx.Tx) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if t.State() != tx.StateActive {
		return fmt.Errorf("%w: tx %d is %v", ErrCommitting, t.ID(), t.State())
	}
	if t.IsSnapshot() {
		// Snapshot reader: no commit record, no locks, no durability wait
		// (its snapshot LSN was durable before it began — nothing it read
		// can be un-committed by a crash). Just unpin and retire.
		e.mvcc.Unpin(t.SnapshotLSN())
		return e.txns.Commit(t)
	}
	if err := ctxErr(ctx); err != nil {
		return err // still abortable; don't push past the point of no return
	}
	if _, err := e.publishCommit(t); err != nil {
		return err
	}
	e.releaseLocks(t)
	if e.flushd != nil {
		if h := t.ELRHorizon(); h > e.log.DurableLSN() {
			return e.awaitHarden(ctx, t, h)
		}
	}
	return e.txns.Commit(t)
}

// flushCtx is log.Flush racing ctx: the flush itself is never torn down
// (group commit continues for everyone else), but the caller stops
// waiting for it when ctx fires.
func (e *Engine) flushCtx(ctx context.Context, upTo wal.LSN) error {
	if ctx.Done() == nil {
		return e.log.Flush(upTo)
	}
	errc := make(chan error, 1)
	go func() { errc <- e.log.Flush(upTo) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		return ctxErr(ctx)
	}
}

// CommitAsync starts committing t and returns a channel that fires
// exactly once: nil when the commit LSN is durable, an error otherwise.
// With the commit pipeline, t's locks are already released when
// CommitAsync returns — other transactions can read its (not yet
// durable) writes, ordered behind this commit's durability via the ELR
// horizon. Without the pipeline it degrades to a blocking commit on a
// helper goroutine. The caller must not touch t after calling this.
func (e *Engine) CommitAsync(t *tx.Tx) <-chan error {
	out := make(chan error, 1)
	if e.closed.Load() {
		out <- ErrClosed
		return out
	}
	if !e.cfg.CommitPipeline {
		go func() {
			err := e.Commit(t)
			if err != nil {
				switch t.State() {
				case tx.StateActive:
					// The commit never reached its commit record (insert
					// failure): the caller has no handle to clean up with,
					// so roll back here rather than strand the locks.
					_ = e.Abort(t)
				case tx.StateCommitting:
					// In doubt after a failed flush — and without the
					// pipeline the locks are still held. The channel fires
					// at most once, so no caller can retry: do it here,
					// briefly; if the log stays dead, restart recovery
					// resolves the commit exactly as a crash would.
					for attempt := 0; attempt < 3; attempt++ {
						time.Sleep(time.Millisecond << attempt)
						if e.Commit(t) == nil {
							break
						}
					}
				}
			}
			out <- err
		}()
		return out
	}
	if t.State() == tx.StateCommitting {
		// Retrying after a failed harden; the commit record already exists.
		go func() { out <- e.awaitHarden(context.Background(), t, t.HardenTarget()) }()
		return out
	}
	target, err := e.PreCommit(t)
	if err != nil {
		out <- err
		return out
	}
	go func() { out <- e.awaitHarden(context.Background(), t, target) }()
	return out
}

// PreCommit runs the first pipeline stage: it inserts t's commit record,
// moves t to StateCommitting, publishes the ELR horizon and releases all
// of t's locks. It returns the harden target — the log position that must
// become durable before the commit may be acknowledged. After PreCommit
// succeeds t can no longer abort; a crash before the target hardens rolls
// it back during restart recovery (the commit record never made it to
// disk, so analysis sees a loser).
func (e *Engine) PreCommit(t *tx.Tx) (wal.LSN, error) {
	if e.closed.Load() {
		return wal.NullLSN, ErrClosed
	}
	if t.State() != tx.StateActive {
		return wal.NullLSN, fmt.Errorf("%w: tx %d is %v", ErrCommitting, t.ID(), t.State())
	}
	target, err := e.publishCommit(t)
	if err != nil {
		return wal.NullLSN, err
	}
	// Early Lock Release: publish the horizon first so that any
	// transaction acquiring these locks observes it, then drop the locks.
	e.locks.RaiseELR(uint64(target))
	e.releaseLocks(t)
	return target, nil
}

// awaitHarden is the notify stage: wait for the flush daemon to push the
// durable horizon past target, then retire t from the transaction table.
// The wait observes ctx: cancellation abandons the (buffered, exactly-
// once) subscription channel — the daemon still resolves and drops it
// when the horizon advances, so the subscription list stays intact — and
// leaves t in StateCommitting for a later retry or restart recovery.
func (e *Engine) awaitHarden(ctx context.Context, t *tx.Tx, target wal.LSN) error {
	select {
	case err := <-e.flushd.Harden(target):
		if err != nil {
			// Not durable (engine closing / log failure): leave t in
			// StateCommitting; restart recovery decides its fate exactly
			// as a crash would.
			return err
		}
		return e.txns.Commit(t)
	case <-ctx.Done(): // a nil Done channel (no cancellation) never fires
		return ctxErr(ctx)
	}
}

// Abort rolls t back: undo every update (physical or logical), writing
// compensation records, then release locks. Abort deliberately has no
// ctx-observing variant: once begun, rollback must run to completion to
// restore consistency — a cancelled caller still gets a full abort.
func (e *Engine) Abort(t *tx.Tx) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if t.State() == tx.StateCommitting {
		// Pre-committed: the commit record is logged and the locks are
		// gone; rolling back now could undo writes another transaction
		// already read. Only restart recovery may resolve it.
		return fmt.Errorf("%w: tx %d", ErrCommitting, t.ID())
	}
	if t.IsSnapshot() {
		// Snapshot reader: nothing to undo, nothing logged, no locks.
		e.mvcc.Unpin(t.SnapshotLSN())
		return e.txns.Abort(t)
	}
	lsn, err := e.log.Insert(&wal.Record{
		Type: wal.RecTxAbort, TxID: t.ID(), PrevLSN: t.LastLSN(),
	})
	if err != nil {
		return err
	}
	t.RecordLog(lsn)
	if err := e.rollback(t.ID(), t.UndoNext()); err != nil {
		return fmt.Errorf("core: rollback of tx %d: %w", t.ID(), err)
	}
	if _, err := e.log.Insert(&wal.Record{
		Type: wal.RecTxEnd, TxID: t.ID(), PrevLSN: t.LastLSN(),
	}); err != nil {
		return err
	}
	if st := t.Stamp(); st != nil {
		// Only after rollback restored every page: an aborted entry may be
		// GC'd at any time, and a reader finding neither the entry nor a
		// restored page would return uncommitted data. From here on the
		// entries' before-images equal the restored values — harmless.
		st.Abort()
	}
	e.releaseLocks(t)
	return e.txns.Abort(t)
}

// releaseLocks drops every lock t holds (end of 2PL). With SLI, the
// transaction's pure intent locks on the database and stores are parked
// for inheritance instead of released, and the agent carrying them
// returns to the pool for the next transaction; everything else is
// released exactly once (the lock list is deduplicated by the private
// cache).
func (e *Engine) releaseLocks(t *tx.Tx) {
	names := t.Locks()
	ag := t.Agent()
	for i := len(names) - 1; i >= 0; i-- {
		n := names[i]
		if ag != nil && n.Scope != lock.ScopeRow {
			if m := t.HeldMode(n); (m == lock.IS || m == lock.IX) &&
				e.locks.ReleaseInherit(t.ID(), n, ag) {
				continue
			}
		}
		e.locks.Unlock(t.ID(), n)
	}
	if h := t.LockCacheHits(); h > 0 {
		e.locks.NoteCacheHits(h)
	}
	if ag != nil {
		t.SetAgent(nil)
		e.putAgent(ag)
	}
}

// acquire takes a lock for t, recording it for release; ctx cancellation
// unblocks the wait. Two fast paths run before the lock manager:
//
//  1. The transaction-private cache: when the held mode already covers
//     the request, return without any shared-structure access.
//     Conversions (held mode weaker than requested) always reach the
//     manager.
//  2. The worker agent's inherited set (SLI): a lock parked by the
//     agent's previous transaction is claimed with one CAS — no bucket
//     latch. A claim that yields a too-weak mode still skips the fresh
//     enqueue: the manager sees an ordinary conversion.
//
// Under the commit pipeline the granted lock may have been released
// early by a transaction whose commit record is not yet durable;
// folding the ELR horizon into t orders t's own commit acknowledgment
// behind that releaser's durability. The fast paths skip the fold
// safely: a cache hit adds no dependency the original acquisition did
// not already observe, and inherited locks are pure intent locks, so
// every data access under them still takes a row/key/store lock through
// the manager first.
func (e *Engine) acquire(ctx context.Context, t *tx.Tx, n lock.Name, m lock.Mode) error {
	if t.NoLock() {
		// DORA sub-transaction: the partition owner already serialized
		// every conflicting action through its thread-local table.
		return nil
	}
	if held := t.HeldMode(n); held != lock.NL && lock.StrongerOrEqual(held, m) {
		t.HitLockCache()
		return nil
	}
	if ag := t.Agent(); ag != nil {
		if got, ok := ag.Claim(n, t.ID()); ok {
			t.AddLock(n, got)
			if lock.StrongerOrEqual(got, m) {
				return nil
			}
		}
	}
	if err := e.locks.Lock(ctx, t.ID(), n, m, 0); err != nil {
		return err
	}
	t.AddLock(n, m)
	if e.cfg.CommitPipeline {
		t.ObserveELR(wal.LSN(e.locks.ELRHorizon()))
	}
	return nil
}

// lockRow performs hierarchical locking for a row access in mode
// (lock.S or lock.X), with table-level escalation past the threshold.
// A row lock the transaction already holds covers its whole ancestry
// (the intents were taken before it), so the re-access fast path is one
// private cache probe — the manager, and even the per-level cache
// probes, are skipped entirely.
func (e *Engine) lockRow(ctx context.Context, t *tx.Tx, store uint32, rid page.RID, m lock.Mode) error {
	if t.NoLock() {
		return nil
	}
	// If already escalated to a covering store lock, nothing to do.
	if held, ok := t.Escalated(store); ok && lock.StrongerOrEqual(held, m) {
		return nil
	}
	name := lock.RowName(store, rid)
	if held := t.HeldMode(name); held != lock.NL && lock.StrongerOrEqual(held, m) {
		t.HitLockCache()
		return nil
	}
	intent := lock.Intention(m)
	if err := e.acquire(ctx, t, lock.DatabaseName(), intent); err != nil {
		return err
	}
	if err := e.acquire(ctx, t, lock.StoreName(store), intent); err != nil {
		return err
	}
	if e.cfg.EscalateAfter > 0 && t.CountRowLock(store) > e.cfg.EscalateAfter {
		esc := lock.S
		if m == lock.X || m == lock.U {
			esc = lock.X
		}
		if err := e.acquire(ctx, t, lock.StoreName(store), esc); err == nil {
			t.MarkEscalated(store, esc)
			return nil
		}
		// Escalation failed (somebody else holds conflicting locks): fall
		// back to row locking.
	}
	return e.acquire(ctx, t, name, m)
}

// logPhysical appends an update record for op on f's page, applies it, and
// stamps LSN + dirty. undo may be a physical inverse (computed here when
// nil and invertible), a logical descriptor, or explicitly empty for
// redo-only records (pass redoOnly=true).
func (e *Engine) logPhysical(txID uint64, t *tx.Tx, f *buffer.Frame, op pageop.Op, undo []byte, redoOnly bool) error {
	if undo == nil && !redoOnly {
		if inv, ok := pageop.Invert(op); ok {
			undo = inv.Encode()
		}
	}
	rec := &wal.Record{
		Type: wal.RecUpdate,
		TxID: txID,
		Page: f.PID(),
		Redo: op.Encode(),
		Undo: undo,
	}
	if t != nil {
		rec.PrevLSN = t.LastLSN()
	}
	lsn, err := e.log.Insert(rec)
	if err != nil {
		return err
	}
	if e.mvcc != nil && t != nil && !redoOnly {
		// Install the before-image BEFORE applying the page change: a
		// snapshot reader reads the page first (under its latch or a
		// validated optimistic read) and resolves after, so any write it
		// can observe in the page is guaranteed to have its chain entry.
		// Rollback and recovery never come through here with undo
		// (physical undo applies directly, logical undo re-enters the
		// tree as redo-only), so versions install exactly once per
		// forward update.
		e.installVersion(t, f, op, undo)
	}
	if err := pageop.Apply(f.Page(), op); err != nil {
		// The log record is already out; crash-correct but the in-memory
		// state diverged. Treat as fatal for this operation.
		return fmt.Errorf("core: apply %v on %v: %w", op.Kind, f.PID(), err)
	}
	f.Page().SetLSN(uint64(lsn))
	f.MarkDirty(lsn)
	if t != nil {
		t.RecordLog(lsn)
	}
	return nil
}

// Checkpoint takes a fuzzy checkpoint: begin record, transaction + dirty
// page tables, end record, master update. With CleanerCheckpoint (§7.7)
// the dirty-page table collapses to the cleaner-published low-water mark
// instead of a serial buffer pool sweep.
func (e *Engine) Checkpoint() error {
	if e.closed.Load() {
		return ErrClosed
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	beginLSN, err := e.log.Insert(&wal.Record{Type: wal.RecCkptBegin})
	if err != nil {
		return err
	}
	data := wal.CheckpointData{
		BeginLSN: beginLSN,
		Txs:      e.txns.Snapshot(),
	}
	if e.cfg.CleanerCheckpoint {
		if l := e.pool.CleanerCkptLSN(); l != wal.NullLSN {
			// Low-water mark entry: page 0 carries the oldest possible
			// recLSN; redo starts there, no page list needed.
			data.Dirty = []wal.DirtyInfo{{Page: 0, RecLSN: l}}
		} else {
			data.Dirty = e.pool.DirtyPageTable(beginLSN)
		}
	} else {
		// The pre-§7.7 serial sweep of the whole buffer pool.
		data.Dirty = e.pool.DirtyPageTable(beginLSN)
	}
	endLSN, err := e.log.Insert(&wal.Record{
		Type: wal.RecCkptEnd,
		Redo: data.Encode(),
	})
	if err != nil {
		return err
	}
	if err := e.log.Flush(endLSN + 1); err != nil {
		return err
	}
	if err := e.logStore.SetMaster(beginLSN); err != nil {
		return err
	}
	// Reset the auto-checkpoint meter only once the checkpoint fully
	// landed, so a failed attempt is retried on the daemon's next tick.
	e.lastCkpt.Store(uint64(beginLSN))
	e.archiveSegments(beginLSN, data.Dirty)
	if e.mvcc != nil {
		// Version GC rides the checkpoint daemon: drop every before-image
		// committed below the oldest snapshot any reader can still pin
		// (exclusive durable bound, matching BeginSnapshot's Pin).
		e.mvcc.GC(uint64(e.log.DurableLSN()) + 1)
	}
	return nil
}

// archiveSegments drops log segments wholly below the recovery safe
// point: recovery never reads below min(checkpoint begin, oldest dirty
// recLSN, oldest live undo chain), so sealed segments under it are dead
// weight. Failures are ignored — archiving is opportunistic and the next
// checkpoint retries.
func (e *Engine) archiveSegments(beginLSN wal.LSN, dirty []wal.DirtyInfo) {
	ar, ok := e.logStore.(wal.Archiver)
	if !ok {
		return
	}
	point := beginLSN
	for _, d := range dirty {
		if d.RecLSN != wal.NullLSN && d.RecLSN < point {
			point = d.RecLSN
		}
	}
	first, ok := e.txns.MinFirstLSN()
	if !ok {
		// Some transaction's chain extent is unknown (begin record not
		// linked yet); skip this round rather than guess.
		return
	}
	if first != wal.NullLSN && first < point {
		point = first
	}
	if n, err := ar.ArchiveBelow(point); err == nil {
		e.archived.Add(uint64(n))
	}
}

// Crash simulates power failure for recovery testing: background work
// stops, the log's volatile tail vanishes, and nothing is flushed.
func (e *Engine) Crash() {
	if e.closed.Swap(true) {
		return
	}
	e.stopCheckpointLoop()
	e.stopRebalancer()
	if e.dora != nil {
		e.dora.Close()
	}
	if e.flushd != nil {
		e.flushd.Kill() // queued hardens are abandoned, not flushed
	}
	e.pool.StopCleaner()
	_ = e.log.Close() // flushes staged buffer contents up to close point
	e.logStore.Crash()
}

// CrashHard is Crash without the close-time log flush: only what group
// commit already made durable survives. It most closely models pulling
// the plug.
func (e *Engine) CrashHard() {
	if e.closed.Swap(true) {
		return
	}
	e.stopCheckpointLoop()
	e.stopRebalancer()
	if e.dora != nil {
		e.dora.Close()
	}
	if e.flushd != nil {
		e.flushd.Kill()
	}
	e.pool.StopCleaner()
	e.logStore.Crash()
}

// EngineStats aggregates component statistics for profiling output.
type EngineStats struct {
	Buffer   buffer.Stats
	Log      wal.ManagerStats
	Lock     lock.Stats
	Space    space.Stats
	Tx       tx.Stats
	Pipeline wal.DaemonStats   // zero unless CommitPipeline is enabled
	Btree    btree.OLCSnapshot // zero unless OLC is enabled
	Dora     dora.Stats        // zero unless DORA is enabled
	Recovery RecoveryStats     // zero unless Open ran restart recovery
	Mvcc     mvcc.Stats        // zero unless Snapshot is enabled
	Plp      PlpStats          // zero unless PLP is enabled
}

// Stats snapshots all component counters.
func (e *Engine) Stats() EngineStats {
	s := EngineStats{
		Buffer: e.pool.Stats(),
		Log:    e.log.Stats(),
		Lock:   e.locks.Stats(),
		Space:  e.sm.Stats(),
		Tx:     e.txns.Stats(),
		Btree:  e.olc.Snapshot(),
	}
	if e.flushd != nil {
		s.Pipeline = e.flushd.Stats()
	}
	if e.dora != nil {
		s.Dora = e.dora.Stats()
	}
	if e.mvcc != nil {
		s.Mvcc = e.mvcc.Stats()
	}
	if m := e.plpMap.Load(); m != nil {
		s.Plp = PlpStats{
			Keys:       m.Keys(),
			Partitions: m.Parts(),
			Tables:     len(m.Tables()),
			MapVersion: m.Version(),
			Migrations: e.plpMigrations.Load(),
		}
	}
	s.Recovery = e.recovery
	s.Recovery.SegmentsArchived = e.archived.Load()
	return s
}

// fix wraps pool.Fix.
func (e *Engine) fix(pid page.ID, mode sync2.LatchMode) (*buffer.Frame, error) {
	return e.pool.Fix(pid, mode)
}
