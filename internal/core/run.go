package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/lock"
	"repro/internal/tx"
)

// RetryPolicy governs the managed-transaction runner's response to
// deadlock victims and lock timeouts: capped exponential backoff with
// jitter, so repeated victims do not re-collide in lockstep.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts, including the first (default 10).
	MaxAttempts int
	// BaseBackoff is the first retry's backoff (default 250µs); attempt n
	// backs off BaseBackoff << n, capped at MaxBackoff, with ±50% jitter.
	// The defaults suit short in-memory transactions; raise them for
	// workloads whose conflicts take longer to drain.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff growth (default 50ms). The cap matters
	// under sustained contention: a transaction that keeps being chosen
	// as the deadlock victim (retries always carry a fresh, younger txID,
	// which youngest-dies victimizes again) needs to back off far enough
	// to desynchronize from the storm.
	MaxBackoff time.Duration
}

func (p RetryPolicy) normalize() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 10
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 250 * time.Microsecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 50 * time.Millisecond
	}
	return p
}

// backoff returns the sleep before retry attempt (1-based), jittered in
// [d/2, d] so colliding victims spread out.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < attempt && d < p.MaxBackoff; i++ {
		d <<= 1
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	half := int64(d / 2)
	return time.Duration(half + rand.Int63n(half+1))
}

// IsRetryable reports whether err is an abort-and-retry error: a deadlock
// victim or a lock-wait timeout. Cancellation is deliberately not
// retryable — the caller asked to stop.
func IsRetryable(err error) bool {
	return errors.Is(err, lock.ErrDeadlock) || errors.Is(err, lock.ErrTimeout)
}

// RunCtx executes fn inside a managed transaction: it begins a
// transaction, runs fn, and commits via commit (nil means strict
// CommitCtx) when fn returns nil, or aborts when fn errs. Deadlock and
// timeout victims are aborted and retried under policy with capped
// exponential backoff; any other error — and ctx cancellation — aborts
// and returns without retry. fn may therefore run multiple times and must
// be written to be re-executed from scratch (no side effects outside the
// transaction before commit).
//
// A commit failure that leaves the transaction in StateCommitting (an
// interrupted durability wait) is returned as-is — the commit record is
// in the log, so re-running fn could double-apply. For a cancellation the
// runner detaches a background waiter that completes the commit and
// releases its locks once the flush lands, so a cancelled managed commit
// never strands lock holders.
func (e *Engine) RunCtx(ctx context.Context, policy RetryPolicy, fn func(*tx.Tx) error, commit func(context.Context, *tx.Tx) error) error {
	policy = policy.normalize()
	if commit == nil {
		commit = e.CommitCtx
	}
	var err error
	for attempt := 1; ; attempt++ {
		var t *tx.Tx
		t, err = e.BeginCtx(ctx)
		if err != nil {
			return err
		}
		err = fn(t)
		if err == nil {
			err = commit(ctx, t)
			if err == nil {
				return nil
			}
			if t.State() == tx.StateCommitting {
				// In doubt: the commit record is logged, so fn must not
				// re-run. The transaction is invisible to the caller (the
				// runner made it), so nobody could ever retry the wait —
				// detach one, whatever interrupted it (cancellation, a
				// flush error): it finishes the commit once the flush
				// lands and releases the locks, its outcome unobserved,
				// exactly as if the caller had crashed after pre-commit.
				go func() {
					for attempt := 0; attempt < 3; attempt++ {
						if e.Commit(t) == nil {
							return
						}
						time.Sleep(time.Millisecond << attempt)
					}
					// Unrecoverable (log store dead / engine closing):
					// the commit stays in doubt for restart recovery,
					// exactly as a crash would leave it.
				}()
				return err
			}
			if t.State() == tx.StateActive {
				_ = e.Abort(t)
			}
		} else if t.State() == tx.StateActive {
			// Complete the abort even when ctx is cancelled: rollback
			// must run to restore consistency before we surface err.
			if aerr := e.Abort(t); aerr != nil {
				return errors.Join(err, aerr)
			}
		}
		if !IsRetryable(err) {
			return err
		}
		if attempt >= policy.MaxAttempts {
			return fmt.Errorf("core: giving up after %d attempts: %w", attempt, err)
		}
		timer := time.NewTimer(policy.backoff(attempt))
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return ctxErr(ctx)
		}
	}
}
