package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/wal"
)

// plpKey builds a partitioned-index key: 4-byte big-endian routing key
// prefix followed by a discriminator.
func plpKey(rk uint32, i int) []byte {
	k := make([]byte, 4, 12)
	binary.BigEndian.PutUint32(k, rk)
	return append(k, []byte(fmt.Sprintf("%08d", i))...)
}

// TestPlpMapCrashRecovery pins the catalog contract: the partition map —
// segment roots and ownership bounds, including a committed migration —
// survives a crash byte-identically. The map lives in one heap record,
// so ordinary ARIES redo must rebuild exactly what was persisted; a
// reopened engine then serves every key from the same segment forest.
func TestPlpMapCrashRecovery(t *testing.T) {
	cfg := StageConfig(StageFinal)
	cfg.PLP = true
	cfg.DoraPartitions = 2
	cfg.DoraKeys = 4
	cfg.PlpRebalanceEvery = -1 // deterministic migrations only
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}

	setup, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := e.CreatePartitionedIndex(setup)
	if err != nil {
		t.Fatal(err)
	}
	const perKey = 8
	for rk := uint32(1); rk <= 4; rk++ {
		for i := 0; i < perKey; i++ {
			v := []byte(fmt.Sprintf("v-%d-%d", rk, i))
			if err := e.IndexInsert(setup, ix, plpKey(rk, i), v); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Commit(setup); err != nil {
		t.Fatal(err)
	}

	// Deterministic boundary migration: partition 0 sheds routing key 2
	// to partition 1 ([1 3 5] -> [1 2 5]).
	m := e.PlpMap()
	bounds := m.Bounds()
	bounds[1]--
	next, err := m.WithBounds(bounds)
	if err != nil {
		t.Fatal(err)
	}
	e.migrate(0, 1, next)
	m = e.PlpMap()
	if m.Version() != next.Version() {
		t.Fatalf("migration did not flip: map v%d, want v%d", m.Version(), next.Version())
	}
	if got := m.Owner(2); got != 1 {
		t.Fatalf("Owner(2) = %d after migration, want 1", got)
	}
	enc := m.Encode()

	e.Crash()
	e2, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()

	m2 := e2.PlpMap()
	if m2 == nil {
		t.Fatal("reopened engine has no partition map")
	}
	if !bytes.Equal(m2.Encode(), enc) {
		t.Fatalf("recovered map differs:\n got %x\nwant %x", m2.Encode(), enc)
	}

	// The recovered map must still route every key to a live segment.
	tables := m2.Tables()
	if len(tables) != 1 {
		t.Fatalf("recovered map has %d tables, want 1", len(tables))
	}
	ix2 := e2.plpForest(tables[0], m2.Roots(tables[0]))
	check, err := e2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for rk := uint32(1); rk <= 4; rk++ {
		for i := 0; i < perKey; i++ {
			got, ok, err := e2.IndexLookup(check, ix2, plpKey(rk, i))
			if err != nil || !ok {
				t.Fatalf("lookup rk=%d i=%d after recovery: ok=%v err=%v", rk, i, ok, err)
			}
			if want := fmt.Sprintf("v-%d-%d", rk, i); string(got) != want {
				t.Fatalf("lookup rk=%d i=%d = %q, want %q", rk, i, got, want)
			}
		}
	}
	if err := e2.Commit(check); err != nil {
		t.Fatal(err)
	}
	if n, err := ix2.Verify(); err != nil {
		t.Fatalf("forest verify after recovery: %v", err)
	} else if want := 4 * perKey; n != want {
		t.Fatalf("forest holds %d keys after recovery, want %d", n, want)
	}
}
