package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/lock"
	"repro/internal/tx"
	"repro/internal/wal"
)

// TestCtxCancelUnblocksEngineLockWait: a cancelled context unblocks a
// conflicting row-lock wait in well under the (5s) lock timeout, and the
// held lock remains grantable to a third transaction.
func TestCtxCancelUnblocksEngineLockWait(t *testing.T) {
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()
	cfg := StageConfig(StageFinal)
	cfg.Frames = 256
	cfg.LockTimeout = 5 * time.Second
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })

	store := createTable(t, e)
	tx1, _ := e.Begin()
	rid, err := e.HeapInsert(tx1, store, []byte("v0"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(tx1); err != nil {
		t.Fatal(err)
	}

	holder, _ := e.Begin()
	if err := e.HeapUpdate(holder, store, rid, []byte("held")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	waiter, _ := e.BeginCtx(ctx)
	errc := make(chan error, 1)
	go func() { errc <- e.HeapUpdateCtx(ctx, waiter, store, rid, []byte("blocked")) }()
	time.Sleep(30 * time.Millisecond)
	start := time.Now()
	cancel()
	select {
	case err := <-errc:
		if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
			t.Fatalf("cancel took %v to unblock (LockTimeout is 5s)", elapsed)
		}
		if !errors.Is(err, lock.ErrCanceled) {
			t.Fatalf("err = %v, want lock.ErrCanceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter still blocked")
	}
	if err := e.Abort(waiter); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(holder); err != nil {
		t.Fatal(err)
	}
	// Lock queue healthy: a third transaction gets the row immediately.
	tx3, _ := e.Begin()
	if err := e.HeapUpdate(tx3, store, rid, []byte("after")); err != nil {
		t.Fatalf("row not grantable after cancelled wait: %v", err)
	}
	if err := e.Commit(tx3); err != nil {
		t.Fatal(err)
	}
}

// TestCtxCancelDuringHardenWait: cancelling a strict commit's durability
// wait (pipeline stage) returns promptly and leaves the flush daemon's
// subscription list healthy — the same transaction can re-await and a
// later transaction commits normally.
func TestCtxCancelDuringHardenWait(t *testing.T) {
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()
	cfg := StageConfig(StagePipeline)
	cfg.Frames = 256
	// Coupled design: no internal background flusher, so the harden wait
	// is resolved only by the flush daemon — whose batching window we
	// stretch to hold the wait open deterministically.
	cfg.LogDesign = wal.DesignCoupled
	cfg.PipelineInterval = 300 * time.Millisecond
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })

	store := createTable(t, e)
	t1, _ := e.Begin()
	if _, err := e.HeapInsert(t1, store, []byte("slow-commit")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = e.CommitCtx(ctx, t1)
	if !errors.Is(err, lock.ErrCanceled) {
		t.Fatalf("CommitCtx = %v, want lock.ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("cancelled commit wait took %v", elapsed)
	}
	if t1.State() != tx.StateCommitting {
		t.Fatalf("state after cancelled harden = %v, want StateCommitting", t1.State())
	}
	// Retry resolves once the daemon flushes; the abandoned subscription
	// must not have corrupted the list.
	if err := e.CommitCtx(context.Background(), t1); err != nil {
		t.Fatalf("retried commit: %v", err)
	}
	if t1.State() != tx.StateCommitted {
		t.Fatalf("state after retry = %v", t1.State())
	}
	// And a fresh transaction commits normally afterwards.
	t2, _ := e.Begin()
	if _, err := e.HeapInsert(t2, store, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(t2); err != nil {
		t.Fatal(err)
	}
}

// TestRunCtxRetriesDeadlockVictims: the managed runner absorbs induced
// deadlocks (opposite-order row updates) and both workloads commit.
func TestRunCtxRetriesDeadlockVictims(t *testing.T) {
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()
	cfg := StageConfig(StageFinal)
	cfg.Frames = 256
	cfg.LockTimeout = 2 * time.Second
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })

	store := createTable(t, e)
	setup, _ := e.Begin()
	ridA, _ := e.HeapInsert(setup, store, []byte("A"))
	ridB, _ := e.HeapInsert(setup, store, []byte("B"))
	if err := e.Commit(setup); err != nil {
		t.Fatal(err)
	}

	policy := RetryPolicy{MaxAttempts: 30}
	done := make(chan error, 2)
	body := func(a, b bool) func(*tx.Tx) error {
		first, second := ridA, ridB
		if !a {
			first, second = ridB, ridA
		}
		return func(t *tx.Tx) error {
			if err := e.HeapUpdate(t, store, first, []byte("x")); err != nil {
				return err
			}
			time.Sleep(5 * time.Millisecond) // widen the deadlock window
			return e.HeapUpdate(t, store, second, []byte("y"))
		}
	}
	go func() { done <- e.RunCtx(context.Background(), policy, body(true, false), nil) }()
	go func() { done <- e.RunCtx(context.Background(), policy, body(false, true), nil) }()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("managed runner surfaced error: %v", err)
		}
	}
}

// TestRunCtxGivesUpAfterCap: a body that always reports a deadlock is
// retried exactly MaxAttempts times, then the last error surfaces.
func TestRunCtxGivesUpAfterCap(t *testing.T) {
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()
	e, err := Open(vol, logStore, StageConfig(StageFinal))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })

	var attempts atomic.Int64
	policy := RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond}
	err = e.RunCtx(context.Background(), policy, func(t *tx.Tx) error {
		attempts.Add(1)
		return fmt.Errorf("induced: %w", lock.ErrDeadlock)
	}, nil)
	if got := attempts.Load(); got != 4 {
		t.Fatalf("body ran %d times, want 4", got)
	}
	if !errors.Is(err, lock.ErrDeadlock) {
		t.Fatalf("err = %v, want wrapped ErrDeadlock", err)
	}
}

// TestRunCtxStopsOnCancel: cancellation between attempts ends the retry
// loop with ErrCanceled instead of burning the attempt budget.
func TestRunCtxStopsOnCancel(t *testing.T) {
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()
	e, err := Open(vol, logStore, StageConfig(StageFinal))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })

	ctx, cancel := context.WithCancel(context.Background())
	var attempts atomic.Int64
	policy := RetryPolicy{MaxAttempts: 1000, BaseBackoff: 50 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}
	errc := make(chan error, 1)
	go func() {
		errc <- e.RunCtx(ctx, policy, func(t *tx.Tx) error {
			attempts.Add(1)
			return fmt.Errorf("induced: %w", lock.ErrDeadlock)
		}, nil)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, lock.ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("runner did not stop on cancel")
	}
	if got := attempts.Load(); got >= 10 {
		t.Fatalf("runner kept retrying after cancel: %d attempts", got)
	}
}

// TestCommitReadOnlySkipsDurabilityWait: a read-only commit returns
// without waiting on the flush daemon even when the daemon's batching
// window would stall a strict commit.
func TestCommitReadOnlySkipsDurabilityWait(t *testing.T) {
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()
	cfg := StageConfig(StagePipeline)
	cfg.LogDesign = wal.DesignCoupled
	cfg.PipelineInterval = 400 * time.Millisecond // strict commits wait out the window
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })

	store := createTable(t, e)
	w, _ := e.Begin()
	rid, _ := e.HeapInsert(w, store, []byte("row"))
	if err := e.Commit(w); err != nil {
		t.Fatal(err)
	}

	r, _ := e.Begin()
	if _, err := e.HeapRead(r, store, rid); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := e.CommitReadOnly(context.Background(), r); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("read-only commit waited %v", elapsed)
	}
	if r.State() != tx.StateCommitted {
		t.Fatalf("state = %v", r.State())
	}
}
