package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/disk"
	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/tx"
	"repro/internal/wal"
)

func newSLIEngine(t *testing.T) *Engine {
	t.Helper()
	cfg := StageConfig(StageFinal)
	cfg.SLI = true
	e, err := Open(disk.NewMem(0), wal.NewMemStore(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestLockCacheFastPath: a re-read of the same row must be answered by
// the transaction-private cache — zero lock-manager acquires.
func TestLockCacheFastPath(t *testing.T) {
	e, _, _ := newEngine(t, StageFinal)
	store := createTable(t, e)
	tx1, _ := e.Begin()
	rid, err := e.HeapInsert(tx1, store, []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.HeapRead(tx1, store, rid); err != nil {
		t.Fatal(err)
	}
	before := e.Locks().Stats().Acquires
	hitsBefore := tx1.LockCacheHits()
	for i := 0; i < 10; i++ {
		if _, err := e.HeapRead(tx1, store, rid); err != nil {
			t.Fatal(err)
		}
	}
	if delta := e.Locks().Stats().Acquires - before; delta != 0 {
		t.Fatalf("re-reads took %d lock-table acquires, want 0", delta)
	}
	if tx1.LockCacheHits() == hitsBefore {
		t.Fatal("re-reads never hit the private cache")
	}
	if err := e.Commit(tx1); err != nil {
		t.Fatal(err)
	}
	if e.Locks().Stats().CacheHits == 0 {
		t.Fatal("cache hits not folded into lock stats at release")
	}
}

// TestCacheConversionReachesManager: requesting a stronger mode than
// the cached one must bypass the cache and convert in the manager.
func TestCacheConversionReachesManager(t *testing.T) {
	e, _, _ := newEngine(t, StageFinal)
	store := createTable(t, e)
	tx0, _ := e.Begin()
	rid, err := e.HeapInsert(tx0, store, []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(tx0); err != nil {
		t.Fatal(err)
	}

	tx1, _ := e.Begin()
	if _, err := e.HeapRead(tx1, store, rid); err != nil {
		t.Fatal(err)
	}
	rowName := lock.RowName(store, rid)
	if got := e.Locks().Holds(tx1.ID(), rowName); got != lock.S {
		t.Fatalf("after read Holds = %v, want S", got)
	}
	before := e.Locks().Stats().Acquires
	if err := e.HeapUpdate(tx1, store, rid, []byte("w")); err != nil {
		t.Fatal(err)
	}
	if delta := e.Locks().Stats().Acquires - before; delta == 0 {
		t.Fatal("S→X upgrade was served from the cache; conversions must reach the manager")
	}
	if got := e.Locks().Holds(tx1.ID(), rowName); got != lock.X {
		t.Fatalf("after update Holds = %v, want X (converted)", got)
	}
	if got := tx1.HeldMode(rowName); got != lock.X {
		t.Fatalf("cache tracks %v, want X after conversion", got)
	}
	if n := len(tx1.Locks()); n != 3 {
		// db, store, row — deduped across the read and the update.
		t.Fatalf("release list has %d entries, want 3: %v", n, tx1.Locks())
	}
	if err := e.Commit(tx1); err != nil {
		t.Fatal(err)
	}
}

// TestCacheUpgradeModes drives the U and SIX upgrade lattice through
// acquire directly: every request stronger than the cached mode must
// reach the manager and leave the manager and cache agreeing.
func TestCacheUpgradeModes(t *testing.T) {
	e, _, _ := newEngine(t, StageFinal)
	ctx := context.Background()
	n := lock.StoreName(42)

	// S then U: U subsumes S, conversion required; later S is cache-covered.
	tx1, _ := e.Begin()
	if err := e.acquire(ctx, tx1, n, lock.S); err != nil {
		t.Fatal(err)
	}
	before := e.Locks().Stats().Acquires
	if err := e.acquire(ctx, tx1, n, lock.U); err != nil {
		t.Fatal(err)
	}
	if e.Locks().Stats().Acquires == before {
		t.Fatal("S→U upgrade never reached the manager")
	}
	if got := e.Locks().Holds(tx1.ID(), n); got != lock.U {
		t.Fatalf("Holds = %v, want U", got)
	}
	before = e.Locks().Stats().Acquires
	if err := e.acquire(ctx, tx1, n, lock.S); err != nil {
		t.Fatal(err)
	}
	if e.Locks().Stats().Acquires != before {
		t.Fatal("U-covered S request went to the manager")
	}
	if err := e.Commit(tx1); err != nil {
		t.Fatal(err)
	}

	// S then IX: the supremum is SIX, again via the manager.
	tx2, _ := e.Begin()
	if err := e.acquire(ctx, tx2, n, lock.S); err != nil {
		t.Fatal(err)
	}
	if err := e.acquire(ctx, tx2, n, lock.IX); err != nil {
		t.Fatal(err)
	}
	if got := e.Locks().Holds(tx2.ID(), n); got != lock.SIX {
		t.Fatalf("Holds = %v, want SIX", got)
	}
	if got := tx2.HeldMode(n); got != lock.SIX {
		t.Fatalf("cache tracks %v, want SIX", got)
	}
	if err := e.Commit(tx2); err != nil {
		t.Fatal(err)
	}
}

// TestSLISteadyState: with SLI on, a chain of transactions from one
// worker re-acquires its database/store intent locks with no lock-table
// traffic — per-transaction Acquires growth covers only the row lock.
func TestSLISteadyState(t *testing.T) {
	e := newSLIEngine(t)
	store := createTable(t, e)

	run := func() {
		tx1, err := e.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.HeapInsert(tx1, store, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := e.Commit(tx1); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm-up: acquires and parks db/store intents

	before := e.Locks().Stats()
	const txs = 20
	for i := 0; i < txs; i++ {
		run()
	}
	after := e.Locks().Stats()
	if grants := after.InheritedGrants - before.InheritedGrants; grants < 2*txs {
		t.Fatalf("inherited grants = %d, want ≥ %d (db + store intent per tx)", grants, 2*txs)
	}
	// Each steady-state transaction takes exactly one lock-table trip:
	// the fresh row X lock. Intent locks ride the inheritance chain.
	if delta := after.Acquires - before.Acquires; delta > txs {
		t.Fatalf("acquires grew %d over %d txs; intent locks are hitting the table", delta, txs)
	}
}

// TestSLIRevokedByConflictingTx: a store-S scan from another worker
// revokes the parked intent locks and proceeds; the inheriting worker
// falls back to normal acquisition afterwards.
func TestSLIRevokedByConflictingTx(t *testing.T) {
	e := newSLIEngine(t)
	store := createTable(t, e)

	tx1, _ := e.Begin() // worker A's agent
	if _, err := e.HeapInsert(tx1, store, []byte("v")); err != nil {
		t.Fatal(err)
	}
	tx2, _ := e.Begin() // second agent, created while A's is busy
	if err := e.Commit(tx1); err != nil {
		t.Fatal(err) // parks db/store IX on A's agent
	}
	if e.Locks().Stats().Inherits == 0 {
		t.Fatal("commit did not park intent locks")
	}
	// tx2 scans the store: store S conflicts with the parked store IX
	// and must revoke it rather than time out.
	seen := 0
	if err := e.HeapScan(tx2, store, func(_ page.RID, _ []byte) bool { seen++; return true }); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Fatalf("scan saw %d rows, want 1", seen)
	}
	if e.Locks().Stats().Revokes == 0 {
		t.Fatal("conflicting scan never revoked the inherited lock")
	}
	if err := e.Commit(tx2); err != nil {
		t.Fatal(err)
	}
	// The revoked chain recovers: the next transaction re-acquires
	// normally and keeps working.
	tx3, _ := e.Begin()
	if _, err := e.HeapInsert(tx3, store, []byte("w")); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(tx3); err != nil {
		t.Fatal(err)
	}
}

// TestSLIConcurrentScanInsert races inheriting insert workers against
// scanning readers (store S vs inherited store IX) under the race
// detector: claims, parks and revocations interleave and every
// transaction must still commit.
func TestSLIConcurrentScanInsert(t *testing.T) {
	e := newSLIEngine(t)
	store := createTable(t, e)
	ctx := context.Background()
	const iters = 60
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 2; w++ {
		wg.Add(2)
		go func() { // inserter
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := e.RunCtx(ctx, RetryPolicy{}, func(t *tx.Tx) error {
					_, err := e.HeapInsertCtx(ctx, t, store, []byte("v"))
					return err
				}, nil)
				if err != nil {
					errs <- err
					return
				}
			}
		}()
		go func() { // scanner
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := e.RunCtx(ctx, RetryPolicy{}, func(t *tx.Tx) error {
					return e.HeapScanCtx(ctx, t, store, func(_ page.RID, _ []byte) bool { return true })
				}, e.CommitReadOnly)
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Tx.Commits < 4*iters {
		t.Fatalf("commits = %d, want ≥ %d", st.Tx.Commits, 4*iters)
	}
}
