package core

// Snapshot (multiversion) read path: read-only transactions that never
// touch the lock manager. A snapshot transaction pins the durable log
// horizon at begin (clamped below any commit mid-publication) and reads
// every row and index key as of that LSN by combining the current page
// image with the before-images writers install in the engine's version
// store (see internal/mvcc). Correctness leans on latch ordering: writers
// install an entry BEFORE applying the page change under the page EX
// latch, and readers resolve AFTER reading the page under SH (or a
// validated optimistic read) — so any write visible in a page image is
// guaranteed to have its chain entry visible too.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/mvcc"
	"repro/internal/page"
	"repro/internal/pageop"
	"repro/internal/sync2"
	"repro/internal/tx"
)

// Errors of the snapshot path.
var (
	// ErrNoSnapshot is returned by BeginSnapshot when Config.Snapshot is off.
	ErrNoSnapshot = errors.New("core: snapshot reads not enabled (Config.Snapshot)")
	// ErrSnapshotWrite rejects any update attempted by a snapshot transaction.
	ErrSnapshotWrite = errors.New("core: snapshot transaction is read-only")
)

// BeginSnapshot starts a multiversion read-only transaction: no begin
// record, no locks, no log chain. Its snapshot LSN is the durable horizon
// (every commit stamped below it is fully on disk), pinned in the version
// store so GC retains what it may still read. The pinned value is an
// exclusive bound — DurableLSN is the end boundary of the flushed log, so
// a stamp equal to it is itself durable and must be admitted, hence the
// +1 against the strict stamp < S visibility test.
func (e *Engine) BeginSnapshot(ctx context.Context) (*tx.Tx, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if e.mvcc == nil {
		return nil, ErrNoSnapshot
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	t := e.txns.BeginSnapshot()
	t.SetSnapshotLSN(e.mvcc.Pin(uint64(e.log.DurableLSN()) + 1))
	return t, nil
}

// RunViewCtx runs fn inside a managed read-only transaction. With
// snapshot reads enabled the closure runs exactly once on a lock-free
// snapshot transaction — it cannot deadlock, so there is no retry policy
// to apply. Without them it falls back to the classic S-locked read-only
// path under the usual deadlock retry.
func (e *Engine) RunViewCtx(ctx context.Context, policy RetryPolicy, fn func(*tx.Tx) error) error {
	if e.mvcc == nil {
		return e.RunCtx(ctx, policy, fn, e.CommitReadOnly)
	}
	t, err := e.BeginSnapshot(ctx)
	if err != nil {
		return err
	}
	if err := fn(t); err != nil {
		if t.State() == tx.StateActive {
			_ = e.Abort(t)
		}
		return err
	}
	return e.CommitReadOnly(ctx, t)
}

// snapshotGuard rejects write operations on snapshot transactions. The
// snapshot path must never fall through to the locking write paths: a
// snapshot transaction holds no locks, so its writes would be unserialized.
func snapshotGuard(t *tx.Tx) error {
	if t != nil && t.IsSnapshot() {
		return ErrSnapshotWrite
	}
	return nil
}

// heapVersionKey is the version-store key of one heap slot.
func heapVersionKey(pid page.ID, slot uint16) []byte {
	var k [10]byte
	binary.LittleEndian.PutUint64(k[:], uint64(pid))
	binary.LittleEndian.PutUint16(k[8:], slot)
	return k[:]
}

// installVersion records the before-image of a forward page update in the
// version store, stamped by the writing transaction. Called by
// logPhysical after the log insert and before the page apply, under the
// page's EX latch. Heap ops carry their before-image physically (op.Old);
// B-tree key mutations carry it in their logical undo descriptor —
// structure modifications (splits) log redo-only and install nothing.
func (e *Engine) installVersion(t *tx.Tx, f *buffer.Frame, op pageop.Op, undo []byte) {
	if pageop.IsLogical(undo) {
		l, err := pageop.DecodeLogical(undo)
		if err != nil {
			return
		}
		switch l.Kind {
		case pageop.LogicalBTreeDelete: // undo of insert: key was absent before
			e.mvcc.Install(mvcc.KindIndex, l.Store, l.Key, nil, false, t.EnsureStamp())
		case pageop.LogicalBTreeInsert, pageop.LogicalBTreeUpdate: // key held Value before
			e.mvcc.Install(mvcc.KindIndex, l.Store, l.Key, l.Value, true, t.EnsureStamp())
		}
		return
	}
	p := f.Page()
	if p.Type() != page.TypeHeap {
		return
	}
	key := heapVersionKey(f.PID(), op.Slot)
	switch op.Kind {
	case pageop.KindHeapInsert: // slot was free (or tombstoned) before
		e.mvcc.Install(mvcc.KindHeap, p.Store(), key, nil, false, t.EnsureStamp())
	case pageop.KindUpdateAt, pageop.KindHeapDelete:
		e.mvcc.Install(mvcc.KindHeap, p.Store(), key, op.Old, true, t.EnsureStamp())
	}
}

// heapReadSnapshot resolves one record as of t's snapshot: page image
// under a short SH latch, then the version chain.
func (e *Engine) heapReadSnapshot(t *tx.Tx, store uint32, rid page.RID) ([]byte, error) {
	e.mvcc.CountRead()
	f, err := e.fix(rid.Page, sync2.LatchSH)
	if err != nil {
		return nil, err
	}
	var cur []byte
	exists := false
	if rec, rerr := f.Page().Record(int(rid.Slot)); rerr == nil {
		cur = append([]byte(nil), rec...)
		exists = true
	}
	e.pool.Unfix(f, sync2.LatchSH)
	val, ok := e.mvcc.Resolve(mvcc.KindHeap, store, heapVersionKey(rid.Page, rid.Slot),
		t.SnapshotLSN(), cur, exists)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoRecord, rid)
	}
	return append([]byte(nil), val...), nil
}

// heapScanSnapshot iterates the table as of t's snapshot. Unlike the
// locked scan it enumerates tombstoned slots too: a record deleted after
// the snapshot exists only as a version entry hanging off its (now empty)
// slot. Slots are never unallocated and pages never leave the store, so
// the page×slot sweep covers every record the snapshot can see.
func (e *Engine) heapScanSnapshot(t *tx.Tx, store uint32, fn func(rid page.RID, rec []byte) bool) error {
	e.mvcc.CountScan()
	snap := t.SnapshotLSN()
	pids, err := e.sm.Pages(store)
	if err != nil {
		return err
	}
	type slotImg struct {
		rid    page.RID
		rec    []byte
		exists bool
	}
	for _, pid := range pids {
		f, err := e.fix(pid, sync2.LatchSH)
		if err != nil {
			return err
		}
		p := f.Page()
		if p.Type() != page.TypeHeap {
			e.pool.Unfix(f, sync2.LatchSH)
			continue
		}
		n := p.NumSlots()
		batch := make([]slotImg, 0, n)
		keys := make([][]byte, 0, n)
		keyBuf := make([]byte, 10*n) // one allocation backs every version key
		for i := 0; i < n; i++ {
			it := slotImg{rid: page.RID{Page: pid, Slot: uint16(i)}}
			if rec, rerr := p.Record(i); rerr == nil {
				it.rec = append([]byte(nil), rec...)
				it.exists = true
			}
			batch = append(batch, it)
			k := keyBuf[i*10 : i*10+10]
			binary.LittleEndian.PutUint64(k, uint64(pid))
			binary.LittleEndian.PutUint16(k[8:], uint16(i))
			keys = append(keys, k)
		}
		e.pool.Unfix(f, sync2.LatchSH)
		// One locked pass grabs the page's chains; resolution itself is
		// lock-free, so the whole batch costs one version-store round-trip.
		chains := e.mvcc.ChainsFor(mvcc.KindHeap, store, keys)
		var noChain mvcc.Chain
		for i, it := range batch {
			if chains == nil || chains[i] == noChain {
				// No versions: the batch copy is already private, hand it out.
				if it.exists && !fn(it.rid, it.rec) {
					return nil
				}
				continue
			}
			val, ok := chains[i].Resolve(snap, it.rec, it.exists)
			if !ok {
				continue
			}
			if !fn(it.rid, append([]byte(nil), val...)) {
				return nil
			}
		}
	}
	return nil
}

// indexLookupSnapshot probes the index as of t's snapshot: a pin-free
// optimistic leaf read (falling back to the latched descent), then chain
// resolution.
func (e *Engine) indexLookupSnapshot(t *tx.Tx, ix *Index, key []byte) ([]byte, bool, error) {
	e.mvcc.CountRead()
	cur, found, err := ix.segFor(key).SearchOpt(key)
	if err != nil {
		return nil, false, err
	}
	val, ok := e.mvcc.Resolve(mvcc.KindIndex, ix.store, key, t.SnapshotLSN(), cur, found)
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), val...), true, nil
}

// indexScanSnapshot iterates [from, to) as of t's snapshot. The tree scan
// only yields keys currently present, so keys deleted after the snapshot
// must be resurrected from the version store. They are merged in chunks:
// after the scan has read the leaves covering a key range, every
// versioned key in that range is fetched and merge-sorted in — reading
// the leaves first matters, because a delete that beat the scan to a leaf
// has (by install-before-apply under the leaf latch) already published
// its version entry. Keys yielded by either side resolve through the
// chain as usual; over-approximation is harmless since resolution filters
// anything invisible.
func (e *Engine) indexScanSnapshot(t *tx.Tx, ix *Index, from, to []byte, fn func(key, value []byte) bool) error {
	e.mvcc.CountScan()
	snap := t.SnapshotLSN()
	const chunkSize = 128
	type kv struct{ k, v []byte }
	var (
		buf     []kv
		lo      = from // lower bound of the next versioned-key query
		stopped bool
	)
	emit := func(key, cur []byte, curExists bool) bool {
		val, ok := e.mvcc.Resolve(mvcc.KindIndex, ix.store, key, snap, cur, curExists)
		if !ok {
			return true // absent as of the snapshot: skip, keep scanning
		}
		return fn(key, append([]byte(nil), val...))
	}
	// flush merges the buffered tree entries with versioned keys in
	// [lo, hiExcl) — tree entry wins on an equal key (same chain either way).
	flush := func(hiExcl []byte) bool {
		extras := e.mvcc.KeysInRange(ix.store, lo, hiExcl)
		j := 0
		for _, it := range buf {
			for j < len(extras) {
				c := bytes.Compare(extras[j], it.k)
				if c >= 0 {
					if c == 0 {
						j++
					}
					break
				}
				if !emit(extras[j], nil, false) {
					return false
				}
				j++
			}
			if !emit(it.k, it.v, true) {
				return false
			}
		}
		for ; j < len(extras); j++ {
			if !emit(extras[j], nil, false) {
				return false
			}
		}
		buf = buf[:0]
		return true
	}
	// For a PLP forest, scanForest stitches segments in routing-key
	// order, which is global key order (routing keys are the leading key
	// bytes), so the chunked version merge is oblivious to partitioning.
	scan := func(cb func(k, v []byte) bool) error {
		if ix.segs != nil {
			return ix.scanForest(false, from, to, func(k, v []byte) bool {
				// scanForest already hands out private copies.
				return cb(k, v)
			})
		}
		return ix.tree.Scan(from, to, func(k, v []byte) bool {
			return cb(append([]byte(nil), k...), append([]byte(nil), v...))
		})
	}
	err := scan(func(k, v []byte) bool {
		buf = append(buf, kv{k, v})
		if len(buf) >= chunkSize {
			// Just past the last buffered key: the smallest possible
			// exclusive bound that still covers everything buffered.
			hi := append(append([]byte(nil), buf[len(buf)-1].k...), 0)
			if !flush(hi) {
				stopped = true
				return false
			}
			lo = hi
		}
		return true
	})
	if err != nil || stopped {
		return err
	}
	flush(to) // tail: remaining entries + versioned keys up to the bound
	return nil
}
