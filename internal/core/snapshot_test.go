package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/tx"
	"repro/internal/wal"
)

// newSnapshotEngine builds a final-stage engine with multiversion
// snapshot reads enabled.
func newSnapshotEngine(t *testing.T) (*Engine, *disk.MemVolume, *wal.MemStore) {
	t.Helper()
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()
	cfg := StageConfig(StageFinal)
	cfg.Frames = 256
	cfg.Snapshot = true
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, vol, logStore
}

// createSnapIndex makes a committed index for snapshot tests.
func createSnapIndex(t *testing.T, e *Engine) *Index {
	t.Helper()
	ct, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := e.CreateIndex(ct)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(ct); err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestSnapshotLockBypass is the manager-bypass invariant: a pure-View
// workload leaves the lock table completely untouched while the mvcc
// counters climb, and a snapshot pinned before a burst of updates keeps
// reading the old values through the version chains.
func TestSnapshotLockBypass(t *testing.T) {
	e, _, _ := newSnapshotEngine(t)
	ctx := context.Background()
	ix := createSnapIndex(t, e)
	store := createTable(t, e)

	const n = 40
	var rids [n]page.RID
	w, _ := e.Begin()
	for i := 0; i < n; i++ {
		if err := e.IndexInsert(w, ix, []byte(fmt.Sprintf("k%03d", i)), []byte("old")); err != nil {
			t.Fatal(err)
		}
		rid, err := e.HeapInsert(w, store, []byte("old"))
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	if err := e.Commit(w); err != nil {
		t.Fatal(err)
	}

	// Pin a snapshot, then update everything so reads must walk chains.
	old, err := e.BeginSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := e.Begin()
	for i := 0; i < n; i++ {
		if err := e.IndexUpdate(w2, ix, []byte(fmt.Sprintf("k%03d", i)), []byte("new")); err != nil {
			t.Fatal(err)
		}
		if err := e.HeapUpdate(w2, store, rids[i], []byte("new")); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Commit(w2); err != nil {
		t.Fatal(err)
	}

	base := e.Stats().Lock.Acquires

	// The held-open old snapshot resolves everything to the pre-update
	// values.
	for i := 0; i < n; i++ {
		v, ok, err := e.IndexLookupCtx(ctx, old, ix, []byte(fmt.Sprintf("k%03d", i)))
		if err != nil || !ok || string(v) != "old" {
			t.Fatalf("old snapshot lookup k%03d = %q, %v, %v; want old", i, v, ok, err)
		}
		hv, err := e.HeapReadCtx(ctx, old, store, rids[i])
		if err != nil || string(hv) != "old" {
			t.Fatalf("old snapshot heap read %v = %q, %v; want old", rids[i], hv, err)
		}
	}
	seen := 0
	if err := e.IndexScanCtx(ctx, old, ix, nil, nil, func(k, v []byte) bool {
		if string(v) != "old" {
			t.Errorf("old snapshot scan %q = %q, want old", k, v)
		}
		seen++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Fatalf("old snapshot scan saw %d keys, want %d", seen, n)
	}
	if err := e.CommitReadOnly(ctx, old); err != nil {
		t.Fatal(err)
	}

	// A fresh view sees the new values — still without locks.
	if err := e.RunViewCtx(ctx, RetryPolicy{}, func(vt *tx.Tx) error {
		v, ok, err := e.IndexLookupCtx(ctx, vt, ix, []byte("k000"))
		if err != nil || !ok || string(v) != "new" {
			return fmt.Errorf("view lookup = %q, %v, %v; want new", v, ok, err)
		}
		got := 0
		return e.HeapScanCtx(ctx, vt, store, func(rid page.RID, rec []byte) bool {
			got++
			return true
		})
	}); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	if st.Lock.Acquires != base {
		t.Fatalf("snapshot reads acquired locks: %d -> %d", base, st.Lock.Acquires)
	}
	m := st.Mvcc
	if m.SnapshotReads == 0 || m.SnapshotScans == 0 || m.ChainWalks == 0 {
		t.Fatalf("mvcc counters flat: %+v", m)
	}
	if m.VersionsInstalled == 0 {
		t.Fatalf("writers installed no versions: %+v", m)
	}
}

// TestSnapshotWriteRejected: snapshot transactions hold no locks, so
// every write path must refuse them outright.
func TestSnapshotWriteRejected(t *testing.T) {
	e, _, _ := newSnapshotEngine(t)
	ctx := context.Background()
	ix := createSnapIndex(t, e)
	store := createTable(t, e)

	s, err := e.BeginSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.HeapInsertCtx(ctx, s, store, []byte("x")); !errors.Is(err, ErrSnapshotWrite) {
		t.Fatalf("HeapInsert on snapshot = %v, want ErrSnapshotWrite", err)
	}
	if err := e.IndexInsertCtx(ctx, s, ix, []byte("k"), []byte("v")); !errors.Is(err, ErrSnapshotWrite) {
		t.Fatalf("IndexInsert on snapshot = %v, want ErrSnapshotWrite", err)
	}
	if _, _, err := e.IndexLookupForUpdateCtx(ctx, s, ix, []byte("k")); !errors.Is(err, ErrSnapshotWrite) {
		t.Fatalf("IndexLookupForUpdate on snapshot = %v, want ErrSnapshotWrite", err)
	}
	if err := e.CommitReadOnly(ctx, s); err != nil {
		t.Fatal(err)
	}
}

func putBalance(b uint64) []byte {
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], b)
	return v[:]
}

// TestSnapshotIndexScanBankInvariant runs as-of index scans against a
// storm of transfers: every scan must see all accounts and a constant
// total balance, even mid-transfer. Run with -race.
func TestSnapshotIndexScanBankInvariant(t *testing.T) {
	e, _, _ := newSnapshotEngine(t)
	ctx := context.Background()
	ix := createSnapIndex(t, e)

	const accounts = 32
	const balance = 1000
	w, _ := e.Begin()
	for i := 0; i < accounts; i++ {
		if err := e.IndexInsert(w, ix, []byte(fmt.Sprintf("acct%03d", i)), putBalance(balance)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Commit(w); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	var transfers atomic.Uint64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				a, b := (g*7+i)%accounts, (g*11+i*3)%accounts
				if a == b {
					continue
				}
				if a > b {
					a, b = b, a // lock in key order: transfers never deadlock each other
				}
				err := e.RunCtx(ctx, RetryPolicy{}, func(wt *tx.Tx) error {
					ka, kb := []byte(fmt.Sprintf("acct%03d", a)), []byte(fmt.Sprintf("acct%03d", b))
					va, ok, err := e.IndexLookupForUpdateCtx(ctx, wt, ix, ka)
					if err != nil || !ok {
						return fmt.Errorf("lookup %s: %v %v", ka, ok, err)
					}
					vb, ok, err := e.IndexLookupForUpdateCtx(ctx, wt, ix, kb)
					if err != nil || !ok {
						return fmt.Errorf("lookup %s: %v %v", kb, ok, err)
					}
					amt := uint64(1 + i%5)
					ba, bb := binary.BigEndian.Uint64(va), binary.BigEndian.Uint64(vb)
					if ba < amt {
						return nil // insufficient funds: commit a no-op
					}
					if err := e.IndexUpdateCtx(ctx, wt, ix, ka, putBalance(ba-amt)); err != nil {
						return err
					}
					return e.IndexUpdateCtx(ctx, wt, ix, kb, putBalance(bb+amt))
				}, nil)
				if err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
				transfers.Add(1)
			}
		}(g)
	}
	go func() { wg.Wait(); close(done) }()

	scans := 0
	for {
		var sum uint64
		seen := 0
		err := e.RunViewCtx(ctx, RetryPolicy{}, func(vt *tx.Tx) error {
			sum, seen = 0, 0
			return e.IndexScanCtx(ctx, vt, ix, nil, nil, func(k, v []byte) bool {
				sum += binary.BigEndian.Uint64(v)
				seen++
				return true
			})
		})
		if err != nil {
			t.Fatalf("view scan: %v", err)
		}
		if seen != accounts || sum != accounts*balance {
			t.Fatalf("inconsistent snapshot: %d accounts, sum %d (want %d x %d)", seen, sum, accounts, balance)
		}
		scans++
		select {
		case <-done:
			t.Logf("%d consistent scans over %d transfers", scans, transfers.Load())
			return
		default:
		}
	}
}

// TestSnapshotHeapScanBankInvariant is the heap-table twin of the index
// bank test: full-table as-of scans stay consistent under row updates.
func TestSnapshotHeapScanBankInvariant(t *testing.T) {
	e, _, _ := newSnapshotEngine(t)
	ctx := context.Background()
	store := createTable(t, e)

	const accounts = 24
	const balance = 500
	rids := make([]page.RID, accounts)
	w, _ := e.Begin()
	for i := range rids {
		rid, err := e.HeapInsert(w, store, putBalance(balance))
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	if err := e.Commit(w); err != nil {
		t.Fatal(err)
	}

	// One writer goroutine (heap reads S-lock then upgrade to X on
	// update; a single writer keeps the storm deadlock-free while the
	// snapshot scans race it).
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 400; i++ {
			a, b := (5+i)%accounts, (13+i*7)%accounts
			if a == b {
				continue
			}
			err := e.RunCtx(ctx, RetryPolicy{}, func(wt *tx.Tx) error {
				va, err := e.HeapReadCtx(ctx, wt, store, rids[a])
				if err != nil {
					return err
				}
				vb, err := e.HeapReadCtx(ctx, wt, store, rids[b])
				if err != nil {
					return err
				}
				amt := uint64(1 + i%3)
				ba, bb := binary.BigEndian.Uint64(va), binary.BigEndian.Uint64(vb)
				if ba < amt {
					return nil
				}
				if err := e.HeapUpdateCtx(ctx, wt, store, rids[a], putBalance(ba-amt)); err != nil {
					return err
				}
				return e.HeapUpdateCtx(ctx, wt, store, rids[b], putBalance(bb+amt))
			}, nil)
			if err != nil {
				t.Errorf("transfer: %v", err)
				return
			}
		}
	}()

	for scans := 0; ; scans++ {
		var sum uint64
		seen := 0
		err := e.RunViewCtx(ctx, RetryPolicy{}, func(vt *tx.Tx) error {
			sum, seen = 0, 0
			return e.HeapScanCtx(ctx, vt, store, func(rid page.RID, rec []byte) bool {
				sum += binary.BigEndian.Uint64(rec)
				seen++
				return true
			})
		})
		if err != nil {
			t.Fatalf("view scan: %v", err)
		}
		if seen != accounts || sum != accounts*balance {
			t.Fatalf("inconsistent snapshot: %d rows, sum %d (want %d x %d)", seen, sum, accounts, balance)
		}
		select {
		case <-done:
			t.Logf("%d consistent heap scans", scans+1)
			return
		default:
		}
	}
}

// TestSnapshotGCRespectsHeldSnapshot: while an old snapshot is pinned,
// checkpoint GC must not reclaim the versions it may read; releasing it
// lets the next checkpoint drain them.
func TestSnapshotGCRespectsHeldSnapshot(t *testing.T) {
	e, _, _ := newSnapshotEngine(t)
	ctx := context.Background()
	ix := createSnapIndex(t, e)

	const n = 10
	w, _ := e.Begin()
	for i := 0; i < n; i++ {
		if err := e.IndexInsert(w, ix, []byte(fmt.Sprintf("g%02d", i)), []byte("v0")); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Commit(w); err != nil {
		t.Fatal(err)
	}

	old, err := e.BeginSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 3; round++ {
		w, _ := e.Begin()
		for i := 0; i < n; i++ {
			if err := e.IndexUpdate(w, ix, []byte(fmt.Sprintf("g%02d", i)), []byte(fmt.Sprintf("v%d", round))); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Commit(w); err != nil {
			t.Fatal(err)
		}
	}

	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats().Mvcc
	// GC may drop entries committed below the pinned snapshot (their
	// before-images can never be consumed again), but every before-image
	// stamped above it — the 3 update rounds — must survive.
	if st.LiveVersions < 3*n {
		t.Fatalf("GC reclaimed versions a pinned snapshot still needs: %d live, want >= %d", st.LiveVersions, 3*n)
	}
	reclaimedHeld := st.GCReclaimed
	// The pinned snapshot still resolves the originals.
	for i := 0; i < n; i++ {
		v, ok, err := e.IndexLookupCtx(ctx, old, ix, []byte(fmt.Sprintf("g%02d", i)))
		if err != nil || !ok || string(v) != "v0" {
			t.Fatalf("held snapshot g%02d = %q, %v, %v; want v0", i, v, ok, err)
		}
	}
	if err := e.CommitReadOnly(ctx, old); err != nil {
		t.Fatal(err)
	}

	// Nudge the durable horizon past the last round's stamps, then GC.
	w2, _ := e.Begin()
	if err := e.IndexUpdate(w2, ix, []byte("g00"), []byte("nudge")); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(w2); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st = e.Stats().Mvcc
	if st.GCReclaimed <= reclaimedHeld {
		t.Fatalf("GC reclaimed nothing after the snapshot was released: %+v", st)
	}
	if st.LiveVersions >= 3*n {
		t.Fatalf("update rounds not drained after release: %d live", st.LiveVersions)
	}
	// A fresh view reads the final values through whatever survived.
	if err := e.RunViewCtx(ctx, RetryPolicy{}, func(vt *tx.Tx) error {
		v, ok, err := e.IndexLookupCtx(ctx, vt, ix, []byte("g05"))
		if err != nil || !ok || string(v) != "v3" {
			return fmt.Errorf("fresh view g05 = %q, %v, %v; want v3", v, ok, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	t.Logf("reclaimed %d (held: %d), live %d", st.GCReclaimed, reclaimedHeld, st.LiveVersions)
}

// TestSnapshotRecoveryIgnoresVersions: versions live only in memory, so
// a crash with stamped and in-flight versions recovers the plain ARIES
// image — committed updates in, losers rolled back, version store empty.
func TestSnapshotRecoveryIgnoresVersions(t *testing.T) {
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()
	cfg := StageConfig(StageFinal)
	cfg.Frames = 256
	cfg.Snapshot = true
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}

	store := createTable(t, e)
	ct, _ := e.Begin()
	ix, err := e.CreateIndex(ct)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(ct); err != nil {
		t.Fatal(err)
	}

	w, _ := e.Begin()
	rid, err := e.HeapInsert(w, store, []byte("base"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.IndexInsert(w, ix, []byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(w); err != nil {
		t.Fatal(err)
	}

	// Committed update: installs stamped versions.
	w2, _ := e.Begin()
	if err := e.HeapUpdate(w2, store, rid, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := e.IndexUpdate(w2, ix, []byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(w2); err != nil {
		t.Fatal(err)
	}

	// In-flight loser: installs versions that never get a commit stamp.
	loser, _ := e.Begin()
	if err := e.HeapUpdate(loser, store, rid, []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	if err := e.IndexUpdate(loser, ix, []byte("k"), []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Mvcc.VersionsInstalled == 0 {
		t.Fatal("setup installed no versions")
	}
	// Crash: abandon e without closing it.

	e2, err := Open(vol, logStore, cfg)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	t.Cleanup(func() { e2.Close() })
	ix2, err := e2.OpenIndex(ix.Store())
	if err != nil {
		t.Fatal(err)
	}

	check := func(label string, rt *tx.Tx) {
		hv, err := e2.HeapReadCtx(context.Background(), rt, store, rid)
		if err != nil || string(hv) != "committed" {
			t.Fatalf("%s heap read = %q, %v; want committed", label, hv, err)
		}
		v, ok, err := e2.IndexLookupCtx(context.Background(), rt, ix2, []byte("k"))
		if err != nil || !ok || string(v) != "v2" {
			t.Fatalf("%s index lookup = %q, %v, %v; want v2", label, v, ok, err)
		}
	}
	rt, _ := e2.Begin()
	check("locked", rt)
	if err := e2.Commit(rt); err != nil {
		t.Fatal(err)
	}
	if err := e2.RunViewCtx(context.Background(), RetryPolicy{}, func(vt *tx.Tx) error {
		check("snapshot", vt)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Recovery replays and rolls back without manufacturing versions.
	if got := e2.Stats().Mvcc.VersionsInstalled; got != 0 {
		t.Fatalf("recovery installed %d versions; the recovered image must stand alone", got)
	}
}

// TestViewNeverDeadlockVictim: snapshot views hold no locks, so a
// deadlock storm between writers can never pick one as a victim, and
// each view closure runs exactly once (Mvcc.Snapshots counts begins —
// it must equal the number of View calls).
func TestViewNeverDeadlockVictim(t *testing.T) {
	e, _, _ := newSnapshotEngine(t)
	ctx := context.Background()
	ix := createSnapIndex(t, e)

	w, _ := e.Begin()
	for i := 0; i < 8; i++ {
		if err := e.IndexInsert(w, ix, []byte(fmt.Sprintf("d%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Commit(w); err != nil {
		t.Fatal(err)
	}
	baseSnaps := e.Stats().Mvcc.Snapshots

	// Writers lock key pairs in opposite orders: a reliable deadlock storm.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				a, b := fmt.Sprintf("d%d", i%8), fmt.Sprintf("d%d", (i+1)%8)
				if g%2 == 1 {
					a, b = b, a
				}
				_ = e.RunCtx(ctx, RetryPolicy{}, func(wt *tx.Tx) error {
					if _, _, err := e.IndexLookupForUpdateCtx(ctx, wt, ix, []byte(a)); err != nil {
						return err
					}
					// Hold the first lock long enough for the opposite-order
					// writer to grab the second: a real deadlock storm.
					time.Sleep(50 * time.Microsecond)
					if _, _, err := e.IndexLookupForUpdateCtx(ctx, wt, ix, []byte(b)); err != nil {
						return err
					}
					return e.IndexUpdateCtx(ctx, wt, ix, []byte(a), []byte("w"))
				}, nil)
			}
		}(g)
	}

	const viewCalls = 200
	var runs atomic.Uint64
	var viewErrs atomic.Uint64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < viewCalls/4; i++ {
				err := e.RunViewCtx(ctx, RetryPolicy{}, func(vt *tx.Tx) error {
					runs.Add(1)
					return e.IndexScanCtx(ctx, vt, ix, nil, nil, func(k, v []byte) bool { return true })
				})
				if err != nil {
					viewErrs.Add(1)
					if errors.Is(err, lock.ErrDeadlock) {
						t.Errorf("view was a deadlock victim: %v", err)
					}
				}
			}
		}()
	}
	wg.Wait()

	if viewErrs.Load() != 0 {
		t.Fatalf("%d view errors under the writer storm", viewErrs.Load())
	}
	if runs.Load() != viewCalls {
		t.Fatalf("view closures ran %d times for %d calls (snapshot views must run exactly once)", runs.Load(), viewCalls)
	}
	if got := e.Stats().Mvcc.Snapshots - baseSnaps; got != viewCalls {
		t.Fatalf("%d snapshots begun for %d view calls", got, viewCalls)
	}
	t.Logf("writer deadlocks during storm: %d", e.Stats().Lock.Deadlocks)
}

// TestSnapshotScanSeesDeletedKeys: a key deleted after the snapshot was
// pinned must still appear in as-of scans, resurrected from its version
// chain (the tree no longer carries it).
func TestSnapshotScanSeesDeletedKeys(t *testing.T) {
	e, _, _ := newSnapshotEngine(t)
	ctx := context.Background()
	ix := createSnapIndex(t, e)

	const n = 300 // spans several leaves and the scan's merge chunks
	w, _ := e.Begin()
	for i := 0; i < n; i++ {
		if err := e.IndexInsert(w, ix, []byte(fmt.Sprintf("s%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Commit(w); err != nil {
		t.Fatal(err)
	}

	old, err := e.BeginSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Delete every third key and update every fifth.
	w2, _ := e.Begin()
	for i := 0; i < n; i += 3 {
		if _, err := e.IndexDelete(w2, ix, []byte(fmt.Sprintf("s%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i += 5 {
		if i%3 == 0 {
			continue
		}
		if err := e.IndexUpdate(w2, ix, []byte(fmt.Sprintf("s%04d", i)), []byte("new")); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Commit(w2); err != nil {
		t.Fatal(err)
	}

	want := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		want[fmt.Sprintf("s%04d", i)] = true
	}
	var prev []byte
	err = e.IndexScanCtx(ctx, old, ix, nil, nil, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Errorf("scan order violated: %q then %q", prev, k)
		}
		prev = append(prev[:0], k...)
		if !want[string(k)] {
			t.Errorf("unexpected or duplicate key %q", k)
		}
		delete(want, string(k))
		if string(v) != "v" {
			t.Errorf("key %q = %q, want pre-update value v", k, v)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 0 {
		t.Fatalf("as-of scan missed %d keys (e.g. deleted ones must resurrect from chains)", len(want))
	}
	if err := e.CommitReadOnly(ctx, old); err != nil {
		t.Fatal(err)
	}

	// A fresh view agrees with the tree's current state.
	got := 0
	if err := e.RunViewCtx(ctx, RetryPolicy{}, func(vt *tx.Tx) error {
		got = 0
		return e.IndexScanCtx(ctx, vt, ix, nil, nil, func(k, v []byte) bool { got++; return true })
	}); err != nil {
		t.Fatal(err)
	}
	wantLive := 0
	for i := 0; i < n; i++ {
		if i%3 != 0 {
			wantLive++
		}
	}
	if got != wantLive {
		t.Fatalf("fresh view saw %d keys, want %d", got, wantLive)
	}
}
