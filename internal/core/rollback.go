package core

import (
	"errors"
	"fmt"

	"repro/internal/btree"
	"repro/internal/pageop"
	"repro/internal/sync2"
	"repro/internal/wal"
)

// rollback undoes transaction txID from undoNext back to its begin record,
// writing compensation log records so that a crash mid-rollback resumes
// where it left off. It serves both live aborts and restart undo; the
// transaction must be registered in the transaction manager (live, or
// Restore()d by analysis).
func (e *Engine) rollback(txID uint64, undoNext wal.LSN) error {
	t := e.txns.Lookup(txID)
	if t == nil {
		return fmt.Errorf("core: rollback of unknown tx %d", txID)
	}
	// The undo walk reads the log through the store; push the volatile
	// tail out first. (Everything we must read precedes this point.)
	if err := e.log.Flush(e.log.CurLSN()); err != nil {
		return err
	}
	cur := undoNext
	for cur != wal.NullLSN {
		rec, err := wal.ReadRecordAt(e.logStore, cur)
		if err != nil {
			return err
		}
		switch rec.Type {
		case wal.RecTxBegin:
			return nil // fully undone
		case wal.RecCLR:
			// Skip everything this CLR already compensated.
			cur = rec.UndoNext
			t.SetUndoNext(cur)
			continue
		case wal.RecUpdate:
			if len(rec.Undo) == 0 {
				// Redo-only (structure modification / format): not undone.
				cur = rec.PrevLSN
				t.SetUndoNext(cur)
				continue
			}
			if pageop.IsLogical(rec.Undo) {
				if err := e.undoLogical(t, rec); err != nil {
					return err
				}
			} else {
				if err := e.undoPhysical(t, rec); err != nil {
					return err
				}
			}
			cur = rec.PrevLSN
			t.SetUndoNext(cur)
		case wal.RecTxAbort:
			cur = rec.PrevLSN
			t.SetUndoNext(cur)
		default:
			cur = rec.PrevLSN
			t.SetUndoNext(cur)
		}
	}
	return nil
}

// undoPhysical applies a physical inverse op and logs it as a CLR whose
// redo payload is the inverse (so restart can redo the undo) and whose
// UndoNext skips past the compensated record.
func (e *Engine) undoPhysical(t interface {
	ID() uint64
	LastLSN() wal.LSN
	RecordLog(wal.LSN)
}, rec *wal.Record) error {
	op, err := pageop.Decode(rec.Undo)
	if err != nil {
		return err
	}
	f, err := e.fix(rec.Page, sync2.LatchEX)
	if err != nil {
		return err
	}
	defer e.pool.Unfix(f, sync2.LatchEX)
	clr := &wal.Record{
		Type:     wal.RecCLR,
		TxID:     t.ID(),
		PrevLSN:  t.LastLSN(),
		Page:     rec.Page,
		Redo:     rec.Undo,
		UndoNext: rec.PrevLSN,
	}
	lsn, err := e.log.InsertCLR(clr)
	if err != nil {
		return err
	}
	if err := pageop.Apply(f.Page(), op); err != nil {
		return fmt.Errorf("core: physical undo %v on %v: %w", op.Kind, rec.Page, err)
	}
	if op.Kind == pageop.KindHeapDelete {
		// Undoing an insert tombstones the slot; keep the frame's
		// free-slot hint honest so the slot stays reusable.
		f.LowerSlotHint(op.Slot)
	}
	f.Page().SetLSN(uint64(lsn))
	f.MarkDirty(lsn)
	t.RecordLog(lsn)
	return nil
}

// undoLogical executes a logical undo action (B-tree key-level) through
// the index layer with redo-only logging, then writes a marker CLR that
// skips the compensated record.
func (e *Engine) undoLogical(t interface {
	ID() uint64
	LastLSN() wal.LSN
	RecordLog(wal.LSN)
}, rec *wal.Record) error {
	l, err := pageop.DecodeLogical(rec.Undo)
	if err != nil {
		return err
	}
	tr, err := e.openTreeByStore(l.Store, l.Key)
	if err != nil {
		return err
	}
	// Logical undo must be idempotent: a crash after the action but
	// before its CLR re-executes it at restart, so "already undone" states
	// (key absent on delete-undo, present on insert-undo) are successes.
	switch l.Kind {
	case pageop.LogicalBTreeDelete:
		if _, err := tr.DeleteNoUndo(t.ID(), l.Key); err != nil && !errors.Is(err, btree.ErrKeyNotFound) {
			return fmt.Errorf("core: logical undo delete %q: %w", l.Key, err)
		}
	case pageop.LogicalBTreeInsert:
		if err := tr.InsertNoUndo(t.ID(), l.Key, l.Value); err != nil && !errors.Is(err, btree.ErrDuplicateKey) {
			return fmt.Errorf("core: logical undo insert %q: %w", l.Key, err)
		}
	case pageop.LogicalBTreeUpdate:
		if err := tr.UpdateNoUndo(t.ID(), l.Key, l.Value); err != nil && !errors.Is(err, btree.ErrKeyNotFound) {
			return fmt.Errorf("core: logical undo update %q: %w", l.Key, err)
		}
	default:
		return fmt.Errorf("core: unknown logical undo kind %d", l.Kind)
	}
	clr := &wal.Record{
		Type:     wal.RecCLR,
		TxID:     t.ID(),
		PrevLSN:  t.LastLSN(),
		UndoNext: rec.PrevLSN,
	}
	lsn, err := e.log.InsertCLR(clr)
	if err != nil {
		return err
	}
	t.RecordLog(lsn)
	return nil
}
