package core

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/wal"
)

// BenchmarkRecoveryReplay measures restart recovery over a crash image
// with a long redo tail, serial vs. hash-partitioned parallel redo. The
// crash image is built once; every iteration recovers a fresh clone.
func BenchmarkRecoveryReplay(b *testing.B) {
	vol := disk.NewMem(0)
	logStore := wal.NewMemSegmentStore(1 << 20)
	cfg := StageConfig(StageFinal)
	cfg.Frames = 512
	cfg.RedoWorkers = 1
	e, err := Open(vol, logStore, cfg)
	if err != nil {
		b.Fatal(err)
	}
	store := createTable(b, e)
	var rids []page.RID
	const rows = 2000
	for i := 0; i < rows; i++ {
		tx, _ := e.Begin()
		rid, err := e.HeapInsert(tx, store, []byte(fmt.Sprintf("bench-row-%06d-%032d", i, i)))
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Commit(tx); err != nil {
			b.Fatal(err)
		}
		rids = append(rids, rid)
	}
	for i := 0; i < rows; i++ {
		tx, _ := e.Begin()
		if err := e.HeapUpdate(tx, store, rids[i], []byte(fmt.Sprintf("bench-upd-%06d-%032d", i, i))); err != nil {
			b.Fatal(err)
		}
		if err := e.Commit(tx); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.Log().Flush(e.Log().CurLSN()); err != nil {
		b.Fatal(err)
	}
	e.CrashHard()

	// Exercise the partitioned path even on small machines: the point of
	// the second variant is the parallel dispatcher, not raw speedup.
	parallel := runtime.GOMAXPROCS(0)
	if parallel < 4 {
		parallel = 4
	}
	for _, workers := range []int{1, parallel} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var replayed uint64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				v := vol.Clone()
				ls := logStore.Clone()
				rcfg := cfg
				rcfg.RedoWorkers = workers
				b.StartTimer()
				re, err := Open(v, ls, rcfg)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				replayed = re.Stats().Recovery.RecordsReplayed
				if err := re.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(replayed), "records/recovery")
		})
	}
}
