// Package core wires the substrates — buffer pool, log manager, lock
// manager, free-space manager, transaction manager, B-tree — into the
// storage manager whose optimization journey the Shore-MT paper narrates.
// Every Figure 7 stage is a Config preset; Figure 6's mutex variants are a
// Config knob on the free-space manager.
package core

import (
	"runtime"
	"time"

	"repro/internal/buffer"
	"repro/internal/lock"
	"repro/internal/space"
	"repro/internal/sync2"
	"repro/internal/wal"
)

// Stage names one point on the Figure 7 optimization ladder.
type Stage int

// Optimization stages, in the order §7 applies them.
const (
	StageBaseline Stage = iota // §7.1: global mutexes everywhere
	StageBpool1                // §7.2: per-bucket bpool locks, atomic pin
	StageCaching               // §7.3: free-space refactor, caches, hot array
	StageLog                   // §7.4: decoupled log, cuckoo bpool table
	StageLockMgr               // §7.5: per-bucket lock table, lock-free pool
	StageBpool2                // §7.6: clock-hand release, partitioned transit
	StageFinal                 // §7.7: consolidated log, cleaner checkpoints
	StagePipeline              // beyond the paper: staged commit pipeline (ELR + async group commit)
)

// String names the stage as Figure 7 labels it.
func (s Stage) String() string {
	switch s {
	case StageBaseline:
		return "baseline"
	case StageBpool1:
		return "bpool1"
	case StageCaching:
		return "caching"
	case StageLog:
		return "log"
	case StageLockMgr:
		return "lock mgr"
	case StageBpool2:
		return "bpool2"
	case StageFinal:
		return "final"
	case StagePipeline:
		return "pipeline"
	default:
		return "unknown"
	}
}

// Stages lists all stages in order.
func Stages() []Stage {
	return []Stage{StageBaseline, StageBpool1, StageCaching, StageLog, StageLockMgr, StageBpool2, StageFinal, StagePipeline}
}

// Config selects component implementations. Use StageConfig for the
// paper's presets and tweak fields for ablations.
type Config struct {
	Stage Stage

	Frames        int           // buffer pool frames (default 4096)
	LogBuffer     int           // log buffer bytes (default 1 MiB)
	LockTimeout   time.Duration // lock wait bound (default 500ms)
	EscalateAfter int           // row locks per store before escalation (default 1024; <0 disables)

	Buffer       buffer.Options
	LogDesign    wal.Design
	Lock         lock.Options
	Space        space.Options
	CachedOldest bool
	// ProbeLockTable re-enables the unnecessary lock-table search on B-tree
	// probes that §7.7 removed.
	ProbeLockTable bool
	// CleanerCheckpoint uses the page-cleaner-tracked LSN for checkpoints
	// (§7.7) instead of serially scanning the buffer pool.
	CleanerCheckpoint bool
	// CleanerInterval runs the background dirty-page cleaner (0 disables).
	CleanerInterval time.Duration
	// CommitPipeline enables the staged commit pipeline (StagePipeline):
	// committing transactions release their locks as soon as the commit
	// record is in the log (Early Lock Release) and a dedicated flush
	// daemon batches outstanding commit LSNs; Commit still blocks until
	// its record is durable, CommitAsync does not.
	CommitPipeline bool
	// PipelineInterval is the flush daemon's optional batching window
	// (0 flushes as soon as the daemon is free).
	PipelineInterval time.Duration
	// SLI enables speculative lock inheritance (Johnson, Pandis,
	// Ailamaki, VLDB 2009): committing transactions park their
	// database/store intent locks on a per-worker agent instead of
	// releasing them, and the agent's next transaction reclaims them
	// with one CAS — no lock-table traffic. Inherited locks stay
	// revocable, but on workloads dominated by absolute (S/X) locks at
	// store granularity the revocation round trips can outweigh the
	// savings; leave it off there. The transaction-private lock cache
	// is always on and needs no knob.
	SLI bool
	// OLC enables optimistic latch coupling on B-tree descents: inner
	// nodes are read speculatively against the frame latch's version
	// (no pin-count or latch RMWs on the read path), restarting from the
	// root on validation failure and falling back to the classic latched
	// descent after bounded retries. Leaves keep SH/EX latching and the
	// Lehman-Yao move-right rules, so crash consistency and key-lock
	// semantics are unchanged. Observability: EngineStats.Btree
	// (OptDescents / Restarts / Fallbacks).
	OLC bool
	// DORA enables data-oriented execution (the Shore-MT authors' VLDB
	// 2010 follow-up): the engine owns a partition executor that routes
	// decomposed transaction actions to dedicated partition-owner
	// goroutines, each with a thread-local lock table. Sub-transactions
	// begun through the executor bypass the shared lock manager
	// entirely (EngineStats.Dora.LocalAcquires counts the grants that
	// never touched it). Orthogonal to Stage, like SLI and OLC.
	DORA bool
	// DoraPartitions fixes the executor's partition count; 0 auto-scales
	// to GOMAXPROCS (mirroring buffer.AutoShards).
	DoraPartitions int
	// DoraKeys, when positive, is the routing keyspace size (TPC-C: the
	// warehouse count); a larger partition count is clamped to it with a
	// logged warning.
	DoraKeys int
	// PLP enables physiological partitioning (the DORA authors' own
	// follow-up): every partitioned index becomes a forest of per-
	// routing-key B-tree segments, and the partition that owns a routing
	// key is the only writer that ever mutates its segments — so
	// partition-local index operations descend, split, and scan on
	// validated speculative page images with no latch acquisition at all
	// (EngineStats.Btree.Owner* counters observe the bypass). The
	// partition map (segment roots + ownership bounds) lives in a
	// catalog store and is rebuilt by crash recovery; a background
	// re-balancer migrates boundary routing keys between adjacent
	// partitions when routing skew exceeds a threshold. Implies DORA.
	PLP bool
	// PlpRebalanceEvery is the skew re-balancer's poll interval. 0
	// defaults to 100ms — long enough that one tick aggregates routing
	// across scheduler rotations even on few cores (short windows see
	// whichever worker happened to run and mistake time-slicing for
	// skew); negative disables re-balancing (the initial even split is
	// kept).
	PlpRebalanceEvery time.Duration
	// Snapshot enables multiversion snapshot reads: writers install the
	// before-image of every row/key they touch in an in-memory version
	// store, stamped at commit with their harden target, and read-only
	// transactions begun with BeginSnapshot (the public DB.View) pin the
	// durable horizon as their snapshot LSN and resolve anything newer by
	// walking the chain — no lock-manager interaction at all, so long
	// scans neither block writers nor abort. Version garbage collection
	// rides the checkpoint (entries below the oldest pinned snapshot are
	// dropped). Orthogonal to Stage, like SLI, OLC, and DORA.
	Snapshot bool
	// CheckpointEvery, when positive, runs a background fuzzy checkpoint
	// whenever that many log bytes have accumulated since the last one,
	// bounding restart-recovery work without manual Checkpoint calls.
	CheckpointEvery int64
	// RedoWorkers sets the parallelism of the redo pass of restart
	// recovery: log records fan out to workers hash-partitioned by page
	// ID, preserving per-page LSN order. 0 auto-scales to GOMAXPROCS;
	// 1 forces the serial replay path.
	RedoWorkers int
	Seed        int64
}

// StageConfig returns the paper's preset for stage.
func StageConfig(stage Stage) Config {
	c := Config{
		Stage:         stage,
		Frames:        4096,
		LogBuffer:     wal.DefaultBufferSize,
		LockTimeout:   500 * time.Millisecond,
		EscalateAfter: 1024,
	}
	// Baseline defaults (original Shore): global mutexes, coupled log,
	// one global clock hand.
	c.Buffer = buffer.Options{
		Table:             buffer.TableGlobalChain,
		AtomicPin:         false,
		TransitPartitions: 1,
		Shards:            1,
	}
	c.LogDesign = wal.DesignCoupled
	c.Lock = lock.Options{Table: lock.TableGlobal, Pool: lock.PoolMutex, DetectDeadlock: true}
	c.Space = space.Options{Mutex: sync2.KindBlocking, LatchInCS: true}
	c.CachedOldest = false
	c.ProbeLockTable = true
	c.CleanerCheckpoint = false

	if stage >= StageBpool1 {
		c.Buffer.Table = buffer.TablePerBucketChain
		c.Buffer.AtomicPin = true
	}
	if stage >= StageCaching {
		c.Buffer.HotArray = 256
		c.Space = space.Options{Mutex: sync2.KindMCS, LatchInCS: false, LastPageCache: true}
		c.CachedOldest = true
	}
	if stage >= StageLog {
		c.LogDesign = wal.DesignDecoupled
		c.Buffer.Table = buffer.TableCuckoo
		c.Space.ExtentCache = true
	}
	if stage >= StageLockMgr {
		c.Lock.Table = lock.TablePerBucket
		c.Lock.Pool = lock.PoolLockFree
	}
	if stage >= StageBpool2 {
		c.Buffer.ClockHandRelease = true
		c.Buffer.TransitPartitions = 128
		c.Buffer.TransitBypass = true
		// Beyond the paper's §7.6 (which only shortened the clock critical
		// section): shard replacement into GOMAXPROCS-scaled clock regions
		// with per-shard free lists kept full by the cleaner.
		c.Buffer.Shards = buffer.AutoShards
	}
	if stage >= StageFinal {
		c.LogDesign = wal.DesignConsolidated
		c.ProbeLockTable = false
		c.CleanerCheckpoint = true
	}
	if stage >= StagePipeline {
		c.CommitPipeline = true
	}
	return c
}

// normalize fills defaults on a partially specified config.
func (c *Config) normalize() {
	if c.Frames <= 0 {
		c.Frames = 4096
	}
	if c.LogBuffer <= 0 {
		c.LogBuffer = wal.DefaultBufferSize
	}
	if c.LockTimeout == 0 {
		c.LockTimeout = 500 * time.Millisecond
	}
	if c.EscalateAfter == 0 {
		c.EscalateAfter = 1024
	}
	if c.RedoWorkers <= 0 {
		c.RedoWorkers = runtime.GOMAXPROCS(0)
	}
	if c.PLP {
		// PLP layers on DORA: routing, ownership, and the single-writer
		// discipline all come from the partition executor.
		c.DORA = true
		if c.DoraKeys <= 0 {
			// The routing keyspace sizes the segment forests, so it must
			// be fixed: default to the partition count (one routing key
			// per partition owner).
			if c.DoraPartitions > 0 {
				c.DoraKeys = c.DoraPartitions
			} else {
				c.DoraKeys = runtime.GOMAXPROCS(0)
			}
		}
		if c.PlpRebalanceEvery == 0 {
			c.PlpRebalanceEvery = 100 * time.Millisecond
		}
	}
	c.Buffer.Frames = c.Frames
	c.Buffer.Seed = c.Seed
	c.Lock.DefaultTimeout = c.LockTimeout
}
