// Package mvcc is the version store behind snapshot (multiversion) reads:
// writers install the before-image of every row/key they touch, keyed by a
// commit stamp shared across the whole transaction, and read-only snapshot
// transactions resolve any entry newer than their snapshot LSN by walking
// the chain — without ever touching the lock manager.
//
// The package deliberately has no dependencies on the rest of the engine
// (LSNs are plain uint64s), so the transaction layer can carry stamps
// without an import cycle.
//
// # Visibility
//
// A version entry records the value a row/key held *before* its writer's
// update; the newest value always lives in the page itself. The writer's
// stamp starts at 0 (in flight), becomes the commit's harden target when
// the commit record is published, or Aborted on rollback. For a reader
// with snapshot LSN S, a write is visible iff 0 < stamp < Aborted and
// stamp < S — strictly below the durability horizon the reader pinned, so
// every visible commit record is already on disk. Resolution walks the
// chain newest→oldest, taking the before-image of each invisible entry,
// and stops at the first visible one (2PL serializes writers per key and
// stamps land before locks release, so stamps descend along a chain; an
// aborted entry's before-image equals the value rollback restored, making
// it harmless wherever it sits).
//
// # Torn-snapshot prevention
//
// One stamp per transaction, stored with a single atomic write, publishes
// all of its versions at once — a reader can never see half a
// transaction. Across transactions the committing writer registers a
// pending floor (the log position just below its commit record) before
// inserting the record; Pin clamps new snapshots to the minimum pending
// floor, so a commit whose stamp has not landed yet is invisible as a
// whole rather than racing the durable horizon.
package mvcc

import (
	"bytes"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// aborted marks a rolled-back writer's stamp: never visible, reclaimable.
const aborted = math.MaxUint64

// Stamp is one writing transaction's commit timestamp, shared by every
// version entry it installs. A single atomic store flips all of them from
// in-flight (0) to committed-at-LSN or aborted.
type Stamp struct{ v atomic.Uint64 }

// NewStamp returns an in-flight stamp.
func NewStamp() *Stamp { return new(Stamp) }

// Commit publishes the writer's versions at lsn (its harden target: the
// log position whose durability completes the commit).
func (s *Stamp) Commit(lsn uint64) { s.v.Store(lsn) }

// Abort marks the writer rolled back; its entries become garbage.
func (s *Stamp) Abort() { s.v.Store(aborted) }

func (s *Stamp) load() uint64 { return s.v.Load() }

// Kind separates the two keyspaces a store versions.
type Kind uint8

// Version keyspaces.
const (
	KindHeap  Kind = iota // key = page id + slot
	KindIndex             // key = the B-tree key bytes
)

// entry is one before-image in a version chain (newest first).
type entry struct {
	next   atomic.Pointer[entry]
	stamp  *Stamp
	before []byte // value before the writer's update; nil when !exists
	exists bool   // false: the row/key did not exist before (insert)
}

// chain is the per-key version list. Readers walk it lock-free. length
// tracks the number of live entries (maintained by installers and GC,
// both of which hold the owning store's map lock at least shared).
type chain struct {
	head   atomic.Pointer[entry]
	length atomic.Int64
}

// storeVersions holds one (kind, store)'s chains. mu guards the map
// (installs hold it shared, GC exclusively); chain links are atomic so
// readers need no lock at all once they hold the chain pointer.
type storeVersions struct {
	mu     sync.RWMutex
	chains map[string]*chain
	count  atomic.Int64
}

type storeKey struct {
	kind  Kind
	store uint32
}

// Store is the engine-wide version store.
type Store struct {
	mu     sync.RWMutex
	stores map[storeKey]*storeVersions

	// pubMu orders snapshot pinning against commit publication: pending
	// maps a committing writer's stamp to its floor (CurLSN just before
	// its commit record), snaps refcounts pinned snapshot LSNs.
	pubMu   sync.Mutex
	pending map[*Stamp]uint64
	snaps   map[uint64]int

	installed  atomic.Uint64
	walks      atomic.Uint64
	reclaimed  atomic.Uint64
	snapshots  atomic.Uint64
	reads      atomic.Uint64
	scans      atomic.Uint64
	oldestGC   atomic.Uint64
	liveBytes  atomic.Int64 // before-image bytes currently retained
	chainLenHW atomic.Int64 // longest chain ever observed at install
}

// NewStore builds an empty version store.
func NewStore() *Store {
	return &Store{
		stores:  make(map[storeKey]*storeVersions),
		pending: make(map[*Stamp]uint64),
		snaps:   make(map[uint64]int),
	}
}

// Stats is a point-in-time snapshot of version-store activity.
type Stats struct {
	VersionsInstalled uint64 // before-images installed by writers
	LiveVersions      int64  // entries currently retained
	ChainWalks        uint64 // reads that walked a non-empty chain
	GCReclaimed       uint64 // entries dropped below the snapshot horizon
	Snapshots         uint64 // snapshot transactions begun
	ActiveSnapshots   int    // snapshots currently pinned
	SnapshotReads     uint64 // point reads served on the snapshot path
	SnapshotScans     uint64 // scans served on the snapshot path
	OldestSnapshot    uint64 // horizon used by the most recent GC pass
	LiveBytes         int64  // before-image bytes currently retained
	ChainLenHW        int64  // longest version chain observed at install
}

func (s *Store) lookup(k Kind, store uint32) *storeVersions {
	s.mu.RLock()
	sv := s.stores[storeKey{k, store}]
	s.mu.RUnlock()
	return sv
}

func (s *Store) storeFor(k Kind, store uint32) *storeVersions {
	key := storeKey{k, store}
	if sv := s.lookup(k, store); sv != nil {
		return sv
	}
	s.mu.Lock()
	sv := s.stores[key]
	if sv == nil {
		sv = &storeVersions{chains: make(map[string]*chain)}
		s.stores[key] = sv
	}
	s.mu.Unlock()
	return sv
}

// Install prepends a before-image for (kind, store, key), stamped by st.
// The caller must hold the page latch that serializes writers on this key
// (2PL guarantees one writer per key anyway) and must install BEFORE
// applying the page change, so a reader that saw the new page value is
// guaranteed to find the entry. Install takes ownership of before.
func (s *Store) Install(kind Kind, store uint32, key []byte, before []byte, exists bool, st *Stamp) {
	sv := s.storeFor(kind, store)
	e := &entry{stamp: st, before: before, exists: exists}
	k := string(key)
	sv.mu.RLock()
	ch := sv.chains[k]
	if ch != nil {
		e.next.Store(ch.head.Load())
		ch.head.Store(e)
		sv.mu.RUnlock()
	} else {
		sv.mu.RUnlock()
		sv.mu.Lock()
		ch = sv.chains[k]
		if ch == nil {
			ch = new(chain)
			sv.chains[k] = ch
		}
		e.next.Store(ch.head.Load())
		ch.head.Store(e)
		sv.mu.Unlock()
	}
	n := ch.length.Add(1)
	for {
		hw := s.chainLenHW.Load()
		if n <= hw || s.chainLenHW.CompareAndSwap(hw, n) {
			break
		}
	}
	sv.count.Add(1)
	s.liveBytes.Add(int64(len(before)))
	s.installed.Add(1)
}

// Resolve returns the value of (kind, store, key) as of snapshot snap,
// given the current page image (cur, curExists). It must be called AFTER
// reading the page: the page latch (or a validated optimistic read)
// orders any writer's install before this lookup. The returned slice may
// alias a retained version entry — callers copy before exposing it.
func (s *Store) Resolve(kind Kind, store uint32, key []byte, snap uint64, cur []byte, curExists bool) ([]byte, bool) {
	sv := s.lookup(kind, store)
	if sv == nil || sv.count.Load() == 0 {
		return cur, curExists
	}
	sv.mu.RLock()
	ch := sv.chains[string(key)]
	sv.mu.RUnlock()
	if ch == nil {
		return cur, curExists
	}
	s.walks.Add(1)
	return ch.resolve(snap, cur, curExists)
}

// resolve walks the chain newest→oldest: take the before-image of every
// entry invisible to snap, stop at the first visible one.
func (ch *chain) resolve(snap uint64, cur []byte, curExists bool) ([]byte, bool) {
	val, ok := cur, curExists
	for e := ch.head.Load(); e != nil; e = e.next.Load() {
		st := e.stamp.load()
		if st != 0 && st != aborted && st < snap {
			break // committed before the snapshot; everything older is too
		}
		val, ok = e.before, e.exists
	}
	return val, ok
}

// Chain is an opaque handle to one key's version chain, as grabbed by
// ChainsFor. The zero value resolves to the current page image.
type Chain struct{ ch *chain }

// Resolve answers exactly like Store.Resolve for the key this chain was
// grabbed for. The same aliasing caveat applies: copy before exposing.
func (c Chain) Resolve(snap uint64, cur []byte, curExists bool) ([]byte, bool) {
	if c.ch == nil {
		return cur, curExists
	}
	return c.ch.resolve(snap, cur, curExists)
}

// ChainsFor is the batch counterpart of Resolve for scans: it grabs the
// version chains of every key in one (kind, store) under a single read
// lock, instead of paying a lock round-trip per slot. A nil result means
// the store holds no versions at all; otherwise out[i] is keys[i]'s
// chain (zero if the key has none). Non-empty chains count as walks,
// matching Resolve — the caller is expected to resolve each one.
func (s *Store) ChainsFor(kind Kind, store uint32, keys [][]byte) []Chain {
	sv := s.lookup(kind, store)
	if sv == nil || sv.count.Load() == 0 {
		return nil
	}
	out := make([]Chain, len(keys))
	var walked uint64
	sv.mu.RLock()
	for i, k := range keys {
		if ch := sv.chains[string(k)]; ch != nil && ch.head.Load() != nil {
			out[i] = Chain{ch}
			walked++
		}
	}
	sv.mu.RUnlock()
	if walked > 0 {
		s.walks.Add(walked)
	}
	return out
}

// KeysInRange returns, sorted, every index key in [from, to) (nil bounds
// are open) that has a live version chain in store. As-of scans merge
// these with the tree's current keys to resurrect entries deleted after
// the snapshot. Call it after reading the leaves it covers — a deletion
// applied before a leaf read is then guaranteed to appear here.
func (s *Store) KeysInRange(store uint32, from, to []byte) [][]byte {
	sv := s.lookup(KindIndex, store)
	if sv == nil || sv.count.Load() == 0 {
		return nil
	}
	var keys [][]byte
	sv.mu.RLock()
	for k, ch := range sv.chains {
		if ch.head.Load() == nil {
			continue
		}
		kb := []byte(k)
		if from != nil && bytes.Compare(kb, from) < 0 {
			continue
		}
		if to != nil && bytes.Compare(kb, to) >= 0 {
			continue
		}
		keys = append(keys, kb)
	}
	sv.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	return keys
}

// BeginPublish registers a committing writer's snapshot floor. It must be
// called before the commit record is inserted, with floor = the log
// position the record will land at or above; until EndPublish, new
// snapshots are clamped below floor so the not-yet-stamped commit stays
// invisible as a whole.
func (s *Store) BeginPublish(st *Stamp, floor uint64) {
	s.pubMu.Lock()
	s.pending[st] = floor
	s.pubMu.Unlock()
}

// EndPublish removes the floor once the stamp is stored (or the commit
// record failed to insert).
func (s *Store) EndPublish(st *Stamp) {
	s.pubMu.Lock()
	delete(s.pending, st)
	s.pubMu.Unlock()
}

// Pin chooses and registers a snapshot LSN for a new reader: the durable
// horizon, clamped below every pending commit publication. Entries the
// snapshot may need are protected from GC until Unpin.
func (s *Store) Pin(durable uint64) uint64 {
	s.pubMu.Lock()
	snap := durable
	for _, floor := range s.pending {
		if floor < snap {
			snap = floor
		}
	}
	s.snaps[snap]++
	s.pubMu.Unlock()
	s.snapshots.Add(1)
	return snap
}

// Unpin releases a snapshot previously returned by Pin.
func (s *Store) Unpin(snap uint64) {
	s.pubMu.Lock()
	if n := s.snaps[snap]; n <= 1 {
		delete(s.snaps, snap)
	} else {
		s.snaps[snap] = n - 1
	}
	s.pubMu.Unlock()
}

// horizon is the oldest LSN any current or future snapshot can pin:
// the minimum over the durable horizon, pending publication floors, and
// registered snapshots. Entries committed strictly below it are visible
// to every snapshot (their before-images can never be consumed again).
func (s *Store) horizon(durable uint64) uint64 {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	oldest := durable
	for _, f := range s.pending {
		if f < oldest {
			oldest = f
		}
	}
	for snap := range s.snaps {
		if snap < oldest {
			oldest = snap
		}
	}
	return oldest
}

// GC drops every entry no snapshot can need — committed below the
// horizon, or aborted — and returns how many were reclaimed. In-flight
// entries (stamp 0) are always kept. Safe against concurrent readers:
// chains are rebuilt with fresh nodes, so a walk in progress keeps a
// fully linked (if stale) view whose extra entries are all visible-to-
// everyone and therefore never change an answer.
func (s *Store) GC(durable uint64) int {
	oldest := s.horizon(durable)
	s.oldestGC.Store(oldest)
	s.mu.RLock()
	svs := make([]*storeVersions, 0, len(s.stores))
	for _, sv := range s.stores {
		svs = append(svs, sv)
	}
	s.mu.RUnlock()
	total := 0
	var freed int64
	for _, sv := range svs {
		d, b := sv.gc(oldest)
		total += d
		freed += b
	}
	if total > 0 {
		s.reclaimed.Add(uint64(total))
		s.liveBytes.Add(-freed)
	}
	return total
}

func (sv *storeVersions) gc(oldest uint64) (int, int64) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	dropped := 0
	var freed int64
	for k, ch := range sv.chains {
		var keep []*entry
		changed := false
		for e := ch.head.Load(); e != nil; e = e.next.Load() {
			st := e.stamp.load()
			if st == aborted || (st != 0 && st < oldest) {
				dropped++
				freed += int64(len(e.before))
				changed = true
				continue
			}
			keep = append(keep, e)
		}
		if !changed {
			continue
		}
		if len(keep) == 0 {
			delete(sv.chains, k)
			continue
		}
		var head *entry
		for i := len(keep) - 1; i >= 0; i-- {
			n := &entry{stamp: keep[i].stamp, before: keep[i].before, exists: keep[i].exists}
			n.next.Store(head)
			head = n
		}
		ch.head.Store(head)
		ch.length.Store(int64(len(keep)))
	}
	if dropped > 0 {
		sv.count.Add(int64(-dropped))
	}
	return dropped, freed
}

// CountRead notes one point read served on the snapshot path.
func (s *Store) CountRead() { s.reads.Add(1) }

// CountScan notes one scan served on the snapshot path.
func (s *Store) CountScan() { s.scans.Add(1) }

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.pubMu.Lock()
	active := 0
	for _, n := range s.snaps {
		active += n
	}
	s.pubMu.Unlock()
	var live int64
	s.mu.RLock()
	for _, sv := range s.stores {
		live += sv.count.Load()
	}
	s.mu.RUnlock()
	return Stats{
		VersionsInstalled: s.installed.Load(),
		LiveVersions:      live,
		ChainWalks:        s.walks.Load(),
		GCReclaimed:       s.reclaimed.Load(),
		Snapshots:         s.snapshots.Load(),
		ActiveSnapshots:   active,
		SnapshotReads:     s.reads.Load(),
		SnapshotScans:     s.scans.Load(),
		OldestSnapshot:    s.oldestGC.Load(),
		LiveBytes:         s.liveBytes.Load(),
		ChainLenHW:        s.chainLenHW.Load(),
	}
}
