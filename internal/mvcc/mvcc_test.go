package mvcc

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestResolveVisibility(t *testing.T) {
	s := NewStore()
	key := []byte("k")

	// Writer A commits at 100: before-image "v0" (row existed).
	a := NewStamp()
	s.Install(KindHeap, 1, key, []byte("v0"), true, a)
	a.Commit(100)
	// Writer B in flight: before-image "v1".
	b := NewStamp()
	s.Install(KindHeap, 1, key, []byte("v1"), true, b)

	// Page currently holds B's uncommitted "v2".
	cur := []byte("v2")

	// Snapshot below A's commit: sees the original v0.
	if v, ok := s.Resolve(KindHeap, 1, key, 50, cur, true); !ok || !bytes.Equal(v, []byte("v0")) {
		t.Fatalf("snap 50: got %q ok=%v, want v0", v, ok)
	}
	// Snapshot above A, B still in flight: sees A's value, i.e. B's before-image v1.
	if v, ok := s.Resolve(KindHeap, 1, key, 200, cur, true); !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("snap 200 pre-commit: got %q ok=%v, want v1", v, ok)
	}
	// B commits at 300: snapshot 200 still sees v1, snapshot 400 sees the page.
	b.Commit(300)
	if v, ok := s.Resolve(KindHeap, 1, key, 200, cur, true); !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("snap 200 post-commit: got %q ok=%v, want v1", v, ok)
	}
	if v, ok := s.Resolve(KindHeap, 1, key, 400, cur, true); !ok || !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("snap 400: got %q ok=%v, want v2", v, ok)
	}
	// Exact equality is invisible: stamp must be strictly below the snapshot.
	if v, ok := s.Resolve(KindHeap, 1, key, 300, cur, true); !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("snap 300: got %q ok=%v, want v1", v, ok)
	}
}

func TestResolveInsertAndDelete(t *testing.T) {
	s := NewStore()
	key := []byte("k")

	// Insert committed at 100: before-image "absent".
	ins := NewStamp()
	s.Install(KindIndex, 2, key, nil, false, ins)
	ins.Commit(100)

	// Before the insert the key does not exist.
	if _, ok := s.Resolve(KindIndex, 2, key, 50, []byte("v"), true); ok {
		t.Fatal("snap 50 should not see the inserted key")
	}
	if v, ok := s.Resolve(KindIndex, 2, key, 150, []byte("v"), true); !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("snap 150: got %q ok=%v", v, ok)
	}

	// Delete committed at 200: before-image "v" (existed). Page now empty.
	del := NewStamp()
	s.Install(KindIndex, 2, key, []byte("v"), true, del)
	del.Commit(200)
	if v, ok := s.Resolve(KindIndex, 2, key, 150, nil, false); !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("snap 150 after delete: got %q ok=%v, want v", v, ok)
	}
	if _, ok := s.Resolve(KindIndex, 2, key, 250, nil, false); ok {
		t.Fatal("snap 250 should see the key deleted")
	}
}

func TestAbortedEntriesInvisibleAndReclaimed(t *testing.T) {
	s := NewStore()
	key := []byte("k")
	st := NewStamp()
	s.Install(KindHeap, 1, key, []byte("orig"), true, st)
	// In flight: reader falls through to the before-image.
	if v, ok := s.Resolve(KindHeap, 1, key, 1000, []byte("dirty"), true); !ok || !bytes.Equal(v, []byte("orig")) {
		t.Fatalf("in-flight: got %q ok=%v, want orig", v, ok)
	}
	st.Abort()
	// Aborted: same answer (rollback restored the page to "orig" too).
	if v, ok := s.Resolve(KindHeap, 1, key, 1000, []byte("orig"), true); !ok || !bytes.Equal(v, []byte("orig")) {
		t.Fatalf("aborted: got %q ok=%v, want orig", v, ok)
	}
	if got := s.GC(0); got != 1 {
		t.Fatalf("GC reclaimed %d, want 1 (aborted entry)", got)
	}
	if live := s.Stats().LiveVersions; live != 0 {
		t.Fatalf("LiveVersions = %d after GC", live)
	}
}

func TestGCRespectsPinnedSnapshot(t *testing.T) {
	s := NewStore()
	key := []byte("k")

	st := NewStamp()
	s.Install(KindHeap, 1, key, []byte("v0"), true, st)
	st.Commit(100)

	snap := s.Pin(50) // old snapshot: durable horizon was 50 back then
	if snap != 50 {
		t.Fatalf("Pin = %d, want 50", snap)
	}
	// Durable horizon is far ahead, but the pinned snapshot holds GC back.
	if got := s.GC(1000); got != 0 {
		t.Fatalf("GC reclaimed %d with old snapshot pinned", got)
	}
	if v, ok := s.Resolve(KindHeap, 1, key, snap, []byte("v1"), true); !ok || !bytes.Equal(v, []byte("v0")) {
		t.Fatalf("pinned snapshot: got %q ok=%v, want v0", v, ok)
	}
	s.Unpin(snap)
	if got := s.GC(1000); got != 1 {
		t.Fatalf("GC reclaimed %d after unpin, want 1", got)
	}
}

func TestPendingFloorClampsPin(t *testing.T) {
	s := NewStore()
	st := NewStamp()
	s.BeginPublish(st, 70)
	// A commit is publishing at floor 70; even though the durable horizon
	// says 100, a new snapshot must stay below the unstamped commit.
	if snap := s.Pin(100); snap != 70 {
		t.Fatalf("Pin during publish = %d, want 70", snap)
	}
	st.Commit(80)
	s.EndPublish(st)
	if snap := s.Pin(100); snap != 100 {
		t.Fatalf("Pin after publish = %d, want 100", snap)
	}
}

func TestKeysInRange(t *testing.T) {
	s := NewStore()
	st := NewStamp()
	for _, k := range []string{"b", "d", "a", "c"} {
		s.Install(KindIndex, 3, []byte(k), nil, false, st)
	}
	st.Commit(10)
	got := s.KeysInRange(3, []byte("b"), []byte("d"))
	if len(got) != 2 || !bytes.Equal(got[0], []byte("b")) || !bytes.Equal(got[1], []byte("c")) {
		t.Fatalf("KeysInRange = %q, want [b c]", got)
	}
	if got := s.KeysInRange(3, nil, nil); len(got) != 4 {
		t.Fatalf("open range: %d keys, want 4", len(got))
	}
	// Heap keyspace is separate.
	if got := s.KeysInRange(4, nil, nil); got != nil {
		t.Fatalf("store 4: %q, want nil", got)
	}
}

// TestConcurrentInstallResolveGC races installers, readers, and GC on a
// small keyspace; run under -race this checks the lock-free walk against
// chain rebuilds and map mutation.
func TestConcurrentInstallResolveGC(t *testing.T) {
	s := NewStore()
	const keys = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var installs atomic.Uint64

	wg.Add(1)
	go func() { // writer: install+commit in sequence
		defer wg.Done()
		lsn := uint64(1)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			st := NewStamp()
			k := []byte(fmt.Sprintf("k%d", i%keys))
			s.Install(KindHeap, 1, k, []byte(fmt.Sprintf("v%d", i)), true, st)
			lsn++
			st.Commit(lsn)
			installs.Add(1)
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Pin(uint64(1 + i))
				k := []byte(fmt.Sprintf("k%d", i%keys))
				s.Resolve(KindHeap, 1, k, snap, []byte("cur"), true)
				s.Unpin(snap)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s.GC(uint64(i * 10))
		}
	}()

	// Let them race until the writer has done real work, so the final
	// assertion cannot trip on a scheduler that never ran it.
	for installs.Load() < 500 {
		runtime.Gosched()
	}
	s.GC(1 << 40)
	close(stop)
	wg.Wait()
	if st := s.Stats(); st.VersionsInstalled == 0 {
		t.Fatal("no versions installed")
	}
}
