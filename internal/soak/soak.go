// Package soak is a kill-and-recover crash-soak harness: a bank-transfer
// workload (TPC-C-style read-modify-write traffic over a heap table and a
// B-tree index) runs over fault-injecting stores, the engine is killed at
// a randomized point in a randomized way — clean power cut, torn log
// tail, failing volume writes, failing log fsyncs — recovered, and
// audited. The audit is unforgiving: money is conserved to the cent
// across every crash, the index stays structurally sound and consistent
// with the heap, and recovery work stays bounded by the checkpoint
// cadence no matter how long the run gets.
package soak

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/tx"
	"repro/internal/wal"
)

// Config parameterizes a soak run. The zero value is unusable; use
// DefaultConfig.
type Config struct {
	Cycles     int   // kill-and-recover cycles
	Accounts   int   // bank accounts
	Workers    int   // concurrent transfer goroutines
	Rounds     int   // traffic rounds per cycle (checkpoint between rounds)
	OpsPerTurn int   // transfers per worker per round
	Seed       int64 // randomization seed (runs are reproducible)

	SegmentBytes int64         // log segment size
	Frames       int           // buffer pool frames (small forces evictions)
	MaxRecovery  time.Duration // hard bound on a single recovery

	Logf func(format string, args ...any) // optional progress logging
}

// DefaultConfig returns the standard soak shape: 30 cycles, 64 accounts,
// 4 workers.
func DefaultConfig(seed int64) Config {
	return Config{
		Cycles:       30,
		Accounts:     64,
		Workers:      4,
		Rounds:       3,
		OpsPerTurn:   12,
		Seed:         seed,
		SegmentBytes: 16 << 10,
		Frames:       128,
		MaxRecovery:  30 * time.Second,
	}
}

// Result summarizes a completed soak run.
type Result struct {
	Cycles           int
	CrashModes       map[string]int
	Transfers        uint64 // committed transfers across all cycles
	TornBytesClipped int64  // total torn-tail bytes recovery clipped
	SegmentsArchived uint64 // log segments reclaimed by checkpoints
	MaxRecoveryTime  time.Duration
	MaxRedoSpan      int64 // largest redo window (bytes) seen
}

const initialBalance = 1000

// account row: 8-byte id, 8-byte balance (two's complement).
func encodeAccount(id uint64, balance int64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, id)
	binary.LittleEndian.PutUint64(b[8:], uint64(balance))
	return b
}

func decodeAccount(b []byte) (id uint64, balance int64, err error) {
	if len(b) != 16 {
		return 0, 0, fmt.Errorf("soak: account row is %d bytes, want 16", len(b))
	}
	return binary.LittleEndian.Uint64(b), int64(binary.LittleEndian.Uint64(b[8:])), nil
}

func encodeBalance(balance int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(balance))
	return b
}

func accountKey(id uint64) []byte { return []byte(fmt.Sprintf("acct-%08d", id)) }

// crash modes, picked per cycle.
const (
	crashClean    = "clean"     // plain power cut at the durable boundary
	crashTornLog  = "torn-log"  // power cut mid log write: torn tail to clip
	crashVolFault = "vol-fault" // volume starts rejecting writes, then power cut
	crashLogFault = "log-fault" // log device stops hardening, then power cut
)

var crashModes = [...]string{crashClean, crashTornLog, crashVolFault, crashLogFault}

// Run executes the soak and returns its summary, or the first audit
// failure. All state lives in memory; a run is deterministic for a given
// Config.
func Run(cfg Config) (*Result, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	vol := disk.NewFault(disk.NewMem(0))
	logStore := wal.NewMemSegmentStore(cfg.SegmentBytes)
	res := &Result{CrashModes: map[string]int{}}
	total := int64(cfg.Accounts) * initialBalance

	engCfg := func() core.Config {
		c := core.StageConfig(core.StageFinal)
		c.Frames = cfg.Frames
		c.LockTimeout = 200 * time.Millisecond
		c.RedoWorkers = 4
		c.Seed = cfg.Seed
		return c
	}

	// Genesis: accounts, index, first checkpoint.
	e, err := core.Open(vol, logStore, engCfg())
	if err != nil {
		return nil, fmt.Errorf("soak: genesis open: %w", err)
	}
	var store, ixStore uint32
	{
		tx, err := e.Begin()
		if err != nil {
			return nil, err
		}
		if store, err = e.CreateTable(tx); err != nil {
			return nil, err
		}
		ix, err := e.CreateIndex(tx)
		if err != nil {
			return nil, err
		}
		ixStore = ix.Store()
		for id := uint64(0); id < uint64(cfg.Accounts); id++ {
			if _, err := e.HeapInsert(tx, store, encodeAccount(id, initialBalance)); err != nil {
				return nil, err
			}
			if err := e.IndexInsert(tx, ix, accountKey(id), encodeBalance(initialBalance)); err != nil {
				return nil, err
			}
		}
		if err := e.Commit(tx); err != nil {
			return nil, err
		}
		if err := e.Checkpoint(); err != nil {
			return nil, err
		}
	}

	// cleanFloor is the log size at the most recent successful cleaner
	// sweep + checkpoint: no redo window opened before it can survive past
	// it, so every later recovery must start at or above it (minus the
	// checkpoint records themselves). This is the "recovery work is
	// bounded by checkpoint cadence, not log volume" invariant.
	cleanFloor := int64(0)

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		// Traffic: rounds of concurrent transfers with checkpoints between
		// them, under whatever faults this cycle's crash mode arms.
		mode := crashModes[rng.Intn(len(crashModes))]
		res.CrashModes[mode]++
		switch mode {
		case crashVolFault:
			vol.FailWritesAfter(int64(rng.Intn(40)))
		case crashLogFault:
			logStore.FailFlushes(int64(rng.Intn(60)))
		}
		for round := 0; round < cfg.Rounds; round++ {
			var wg sync.WaitGroup
			committed := make([]uint64, cfg.Workers)
			for w := 0; w < cfg.Workers; w++ {
				w, seed := w, rng.Int63()
				wg.Add(1)
				go func() {
					defer wg.Done()
					committed[w] = transferWorker(e, store, ixStore, cfg.Accounts, cfg.OpsPerTurn, seed)
				}()
			}
			wg.Wait()
			for _, n := range committed {
				res.Transfers += n
			}
			// Fuzzy checkpoint between rounds; under injected faults it may
			// fail, which is fine — the crash is coming anyway.
			if err := e.Checkpoint(); err != nil && !isExpectedFault(err) {
				return nil, fmt.Errorf("soak cycle %d: checkpoint: %w", cycle, err)
			}
		}

		// Try to establish a clean point: flush all dirty pages, then
		// checkpoint over the empty dirty-page table. Under injected
		// faults either step may fail — the floor simply stays put.
		e.Pool().CleanerSweep() // best-effort under injected faults
		if mode != crashVolFault && mode != crashLogFault {
			// Faults may have left pages dirty or the log unflushable; only
			// a fault-free sweep + checkpoint establishes a clean point.
			if err := e.Checkpoint(); err == nil {
				cleanFloor = logStore.Size()
			} else if !isExpectedFault(err) {
				return nil, fmt.Errorf("soak cycle %d: clean-point checkpoint: %w", cycle, err)
			}
		}

		// Leave losers: transactions caught mid-flight by the crash.
		for i := 0; i < 2; i++ {
			loserTransfer(e, store, ixStore, cfg.Accounts, rng.Int63())
		}
		_ = e.Log().Flush(e.Log().CurLSN()) // may fail under log faults

		// Kill.
		if mode == crashTornLog {
			logStore.ArmTornCrash(int64(1 + rng.Intn(3000)))
		}
		e.CrashHard()
		if mode == crashTornLog {
			// The write the disk had in flight: garbage past the surviving
			// prefix, possibly across a segment boundary.
			garbage := make([]byte, 1+rng.Intn(3000))
			rng.Read(garbage)
			if err := logStore.WriteAt(garbage, logStore.Size()); err != nil {
				return nil, fmt.Errorf("soak cycle %d: splatter: %w", cycle, err)
			}
		}

		// Heal the hardware and recover.
		vol.HealWrites()
		vol.HealTornWrites()
		vol.HealSyncs()
		logStore.FailFlushes(-1)

		start := time.Now()
		e, err = core.Open(vol, logStore, engCfg())
		if err != nil {
			return nil, fmt.Errorf("soak cycle %d (%s): recovery failed: %w", cycle, mode, err)
		}
		rt := time.Since(start)
		if rt > res.MaxRecoveryTime {
			res.MaxRecoveryTime = rt
		}
		if rt > cfg.MaxRecovery {
			return nil, fmt.Errorf("soak cycle %d (%s): recovery took %v (bound %v)", cycle, mode, rt, cfg.MaxRecovery)
		}

		rs := e.Stats().Recovery
		if !rs.Ran {
			return nil, fmt.Errorf("soak cycle %d: recovery did not run", cycle)
		}
		res.TornBytesClipped += rs.TornBytesClipped
		span := int64(rs.LogEnd - rs.RedoStart)
		if span > res.MaxRedoSpan {
			res.MaxRedoSpan = span
		}
		// Redo must never reach back past the last clean point (with slack
		// for the checkpoint records logged around the floor itself).
		if int64(rs.RedoStart)+2*cfg.SegmentBytes < cleanFloor {
			return nil, fmt.Errorf("soak cycle %d: redo started at %d, before the clean point %d — checkpoints are not bounding recovery",
				cycle, rs.RedoStart, cleanFloor)
		}

		if err := audit(e, store, ixStore, cfg.Accounts, total); err != nil {
			return nil, fmt.Errorf("soak cycle %d (%s): %w", cycle, mode, err)
		}
		logf("cycle %02d/%d %-9s recovery=%v redo=%dB torn=%dB archived=%d",
			cycle+1, cfg.Cycles, mode, rt.Round(time.Millisecond),
			int64(rs.LogEnd-rs.RedoStart), rs.TornBytesClipped, logStore.Archived())
	}

	// Final clean shutdown and one last audit through a fresh open.
	if err := e.Close(); err != nil {
		return nil, fmt.Errorf("soak: final close: %w", err)
	}
	e, err = core.Open(vol, logStore, engCfg())
	if err != nil {
		return nil, fmt.Errorf("soak: final reopen: %w", err)
	}
	if err := audit(e, store, ixStore, cfg.Accounts, total); err != nil {
		return nil, fmt.Errorf("soak: final audit: %w", err)
	}
	if err := e.Close(); err != nil {
		return nil, err
	}

	res.Cycles = cfg.Cycles
	res.SegmentsArchived = logStore.Archived()
	if res.SegmentsArchived == 0 {
		return nil, errors.New("soak: no log segments were ever archived — checkpointing is not reclaiming the log")
	}
	return res, nil
}

// transferWorker runs n random transfers and returns how many committed.
// Any error — deadlock, timeout, injected fault, engine killed — aborts
// that transfer and moves on: the post-crash audit is the arbiter.
func transferWorker(e *core.Engine, store, ixStore uint32, accounts, n int, seed int64) uint64 {
	rng := rand.New(rand.NewSource(seed))
	var committed uint64
	for i := 0; i < n; i++ {
		if transferOnce(e, store, ixStore, accounts, rng, true) {
			committed++
		}
	}
	return committed
}

// loserTransfer performs a transfer's updates and deliberately never
// commits: crash fodder for the undo pass.
func loserTransfer(e *core.Engine, store, ixStore uint32, accounts int, seed int64) {
	transferOnce(e, store, ixStore, accounts, rand.New(rand.NewSource(seed)), false)
}

// transferOnce moves a random amount between two random accounts inside
// one transaction, updating both the heap rows and the index entries.
// When commit is false the transaction is left open. Returns whether the
// transfer committed.
func transferOnce(e *core.Engine, store, ixStore uint32, accounts int, rng *rand.Rand, commit bool) bool {
	a := uint64(rng.Intn(accounts))
	b := uint64(rng.Intn(accounts))
	if a == b {
		b = (b + 1) % uint64(accounts)
	}
	if a > b {
		a, b = b, a // lock in id order: fewer deadlocks, same coverage
	}
	amount := int64(1 + rng.Intn(50))

	tx, err := e.Begin()
	if err != nil {
		return false
	}
	ix, err := e.OpenIndex(ixStore)
	if err != nil {
		_ = e.Abort(tx)
		return false
	}
	move := func(id uint64, delta int64) error {
		rid, bal, err := findAccount(e, tx, store, id)
		if err != nil {
			return err
		}
		if err := e.HeapUpdate(tx, store, rid, encodeAccount(id, bal+delta)); err != nil {
			return err
		}
		return e.IndexUpdate(tx, ix, accountKey(id), encodeBalance(bal+delta))
	}
	if err := move(a, -amount); err != nil {
		_ = e.Abort(tx)
		return false
	}
	if err := move(b, +amount); err != nil {
		_ = e.Abort(tx)
		return false
	}
	if !commit {
		return false // left open on purpose
	}
	return e.Commit(tx) == nil
}

// findAccount scans for the heap row of an account. Linear, but tables
// are tiny and the scan doubles as read traffic over every page.
func findAccount(e *core.Engine, t *tx.Tx, store uint32, id uint64) (page.RID, int64, error) {
	var rid page.RID
	var balance int64
	found := false
	err := e.HeapScan(t, store, func(r page.RID, rec []byte) bool {
		gotID, bal, err := decodeAccount(rec)
		if err != nil {
			return true
		}
		if gotID == id {
			rid, balance, found = r, bal, true
			return false
		}
		return true
	})
	if err != nil {
		return rid, 0, err
	}
	if !found {
		return rid, 0, fmt.Errorf("soak: account %d missing", id)
	}
	return rid, balance, nil
}

// audit checks the conservation invariant and structural integrity after
// a recovery: every account present exactly once, heap and index agree on
// every balance, the balances sum to the initial total, and the B-tree
// verifies.
func audit(e *core.Engine, store, ixStore uint32, accounts int, total int64) error {
	tx, err := e.Begin()
	if err != nil {
		return err
	}
	defer func() { _ = e.Commit(tx) }()

	heapBal := make(map[uint64]int64, accounts)
	var heapSum int64
	var scanErr error
	if err := e.HeapScan(tx, store, func(_ page.RID, rec []byte) bool {
		id, bal, err := decodeAccount(rec)
		if err != nil {
			scanErr = err
			return false
		}
		if _, dup := heapBal[id]; dup {
			scanErr = fmt.Errorf("account %d appears twice in the heap", id)
			return false
		}
		heapBal[id] = bal
		heapSum += bal
		return true
	}); err != nil {
		return fmt.Errorf("audit heap scan: %w", err)
	}
	if scanErr != nil {
		return fmt.Errorf("audit: %w", scanErr)
	}
	if len(heapBal) != accounts {
		return fmt.Errorf("audit: %d heap accounts, want %d", len(heapBal), accounts)
	}
	if heapSum != total {
		return fmt.Errorf("audit: money not conserved: heap sum %d, want %d", heapSum, total)
	}

	ix, err := e.OpenIndex(ixStore)
	if err != nil {
		return err
	}
	n := 0
	if err := e.IndexScan(tx, ix, nil, nil, func(key, val []byte) bool {
		var id uint64
		if _, err := fmt.Sscanf(string(key), "acct-%d", &id); err != nil {
			scanErr = fmt.Errorf("bad index key %q", key)
			return false
		}
		if len(val) != 8 {
			scanErr = fmt.Errorf("bad index value for %q", key)
			return false
		}
		bal := int64(binary.LittleEndian.Uint64(val))
		if heapBal[id] != bal {
			scanErr = fmt.Errorf("account %d: index says %d, heap says %d", id, bal, heapBal[id])
			return false
		}
		n++
		return true
	}); err != nil {
		return fmt.Errorf("audit index scan: %w", err)
	}
	if scanErr != nil {
		return fmt.Errorf("audit: %w", scanErr)
	}
	if n != accounts {
		return fmt.Errorf("audit: %d index entries, want %d", n, accounts)
	}
	if count, err := ix.Verify(); err != nil {
		return fmt.Errorf("audit: index corrupt: %w", err)
	} else if count != accounts {
		return fmt.Errorf("audit: Verify counted %d keys, want %d", count, accounts)
	}
	return nil
}

// isExpectedFault reports whether an error plausibly stems from injected
// faults or the impending kill rather than a bug.
func isExpectedFault(err error) bool {
	return errors.Is(err, disk.ErrInjected) || errors.Is(err, wal.ErrInjectedFlush) ||
		errors.Is(err, wal.ErrLogClosed) || errors.Is(err, core.ErrClosed)
}
