package soak

import (
	"fmt"
	"testing"
)

// TestCrashSoak is the headline robustness gate: 30 randomized
// kill-and-recover cycles, every crash flavor, full audit after each.
func TestCrashSoak(t *testing.T) {
	cfg := DefaultConfig(0x50AC)
	if testing.Short() {
		cfg.Cycles = 8
	}
	cfg.Logf = t.Logf
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < 25 && !testing.Short() {
		t.Fatalf("ran %d cycles, want >= 25", res.Cycles)
	}
	if res.Transfers == 0 {
		t.Fatal("no transfer ever committed")
	}
	if res.SegmentsArchived == 0 {
		t.Fatal("no log segments archived")
	}
	if res.TornBytesClipped == 0 {
		t.Fatal("no torn tail was ever clipped — torn-log crashes did not exercise the clip path")
	}
	t.Logf("soak: %d cycles %v, %d transfers, %d B torn clipped, %d segments archived, max recovery %v, max redo span %d B",
		res.Cycles, res.CrashModes, res.Transfers, res.TornBytesClipped,
		res.SegmentsArchived, res.MaxRecoveryTime, res.MaxRedoSpan)
}

// TestCrashSoakSeeds runs short soaks under a few extra seeds so a lucky
// mode sequence cannot hide a bug behind the fixed headline seed.
func TestCrashSoakSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("headline soak covers short mode")
	}
	for _, seed := range []int64{1, 7, 1009} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := DefaultConfig(seed)
			cfg.Cycles = 6
			if _, err := Run(cfg); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		})
	}
}
